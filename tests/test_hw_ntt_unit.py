"""Tests for the dual-core NTT engine and the Fig. 3 access schedule.

These are the executable form of the paper's Sec. V-A3 correctness
argument: every stage's schedule is conflict-free on the BRAM ports,
reads cover every word exactly once, the strict (cycle-by-cycle,
port-checked) executor and the vectorised executor agree bit-for-bit
with the mathematical transform, and the m = 2048 order-inversion trick
appears exactly as printed in the paper's figure.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.errors import HardwareModelError
from repro.hw.config import HardwareConfig
from repro.hw.ntt_unit import DualCoreNttUnit, NttSchedule
from repro.nttmath.ntt import NegacyclicTransformer
from repro.nttmath.primes import find_ntt_primes

CONFIG = HardwareConfig()


def prime_for(n: int) -> int:
    return find_ntt_primes(30, n, 1)[0]


class TestScheduleStructure:
    def test_stage_classification(self):
        schedule = NttSchedule(4096, 2)
        assert not schedule.is_interleave_stage(10)
        assert schedule.is_interleave_stage(11)
        assert not schedule.is_interleave_stage(12)

    def test_pair_lags(self):
        schedule = NttSchedule(4096, 2)
        assert schedule.pair_lag(1) == 1
        assert schedule.pair_lag(10) == 512
        assert schedule.pair_lag(11) == 1   # interleave stage
        assert schedule.pair_lag(12) == 0   # in-place final stage

    def test_paper_fig3_m2048_read_order(self):
        """The exact address sequences printed in Fig. 3 for m = 2048."""
        schedule = NttSchedule(4096, 2)
        reads = schedule.read_order(11)
        assert reads[0][:6] == [0, 1024, 1, 1025, 2, 1026]
        assert reads[1][:6] == [1536, 512, 1537, 513, 1538, 514]

    def test_paper_fig3_exclusive_stages(self):
        """m <= 1024 and m = 4096: core 0 lower block, core 1 upper."""
        schedule = NttSchedule(4096, 2)
        for stage in (1, 5, 10, 12):
            reads = schedule.read_order(stage)
            assert reads[0][0] == 0 and reads[0][-1] == 1023
            assert reads[1][0] == 1024 and reads[1][-1] == 2047

    @pytest.mark.parametrize("n", [16, 64, 256, 4096])
    def test_reads_cover_every_word_once(self, n):
        schedule = NttSchedule(n, 2)
        for stage in range(1, schedule.log_n + 1):
            seen = [w for order in schedule.read_order(stage) for w in order]
            assert sorted(seen) == list(range(schedule.words)), stage

    @pytest.mark.parametrize("n", [16, 64, 256, 4096])
    def test_writes_cover_every_word_once(self, n):
        schedule = NttSchedule(n, 2)
        for stage in range(1, schedule.log_n + 1):
            seen = [w for order in schedule.write_order(stage)
                    for w in order]
            assert sorted(seen) == list(range(schedule.words)), stage

    @pytest.mark.parametrize("n", [16, 64, 256, 1024, 4096])
    def test_conflict_freedom_every_stage(self, n):
        """No two cores touch the same block's same port in any cycle —
        the property Fig. 3's access scheme exists to guarantee."""
        schedule = NttSchedule(n, 2)
        block = schedule.block
        for stage in range(1, schedule.log_n + 1):
            access = schedule.stage_access(stage, pipeline_depth=11)
            for stamped in (access.reads, access.writes):
                used: dict[tuple[int, int], int] = {}
                for core_accesses in stamped:
                    for cycle, word in core_accesses:
                        key = (cycle, word >= block)
                        assert key not in used, (
                            f"stage {stage} cycle {cycle}: double access "
                            f"to block {word >= block}"
                        )
                        used[key] = word

    def test_paired_operand_invariant(self):
        """At every stage, each word holds exactly one butterfly's two
        operands (indices differing in bit stage-1)."""
        schedule = NttSchedule(256, 2)
        for stage in range(1, schedule.log_n + 1):
            for word in range(schedule.words):
                i0, i1 = schedule.butterfly_indices(word, stage)
                assert i1 == i0 + (1 << (stage - 1))
                assert schedule.word_of(i0, stage) == word
                assert schedule.word_of(i1, stage) == word
                assert schedule.slot_of(i0, stage) == 0
                assert schedule.slot_of(i1, stage) == 1

    def test_destination_invariant(self):
        """Stage-s writes place every index where stage s+1 expects it."""
        schedule = NttSchedule(256, 2)
        for stage in range(1, schedule.log_n):
            for index in range(256):
                dest_word, dest_slot = schedule.dest_of(index, stage)
                assert dest_word == schedule.word_of(index, stage + 1)
                assert dest_slot == schedule.slot_of(index, stage + 1)

    def test_twiddle_exponents(self):
        schedule = NttSchedule(64, 2)
        for stage in range(1, 7):
            g = 1 << (stage - 1)
            for word in range(32):
                i0, _ = schedule.butterfly_indices(word, stage)
                assert schedule.twiddle_exponent(word, stage) == i0 % g

    def test_single_core_schedule(self):
        schedule = NttSchedule(64, 1)
        for stage in range(1, 7):
            assert len(schedule.read_order(stage)) == 1
            assert sorted(schedule.read_order(stage)[0]) == list(range(32))

    def test_rejects_bad_configuration(self):
        with pytest.raises(HardwareModelError):
            NttSchedule(4, 2)
        with pytest.raises(HardwareModelError):
            NttSchedule(64, 3)

    def test_conflict_freedom_at_table5_size(self):
        """The schedule stays conflict-free at the (2^13, ...) design
        point the scaling study instantiates."""
        schedule = NttSchedule(8192, 2)
        for stage in (1, schedule.log_n - 2, schedule.log_n - 1,
                      schedule.log_n):
            access = schedule.stage_access(stage, pipeline_depth=11)
            for stamped in (access.reads, access.writes):
                used = set()
                for core_accesses in stamped:
                    for cycle, word in core_accesses:
                        key = (cycle, word >= schedule.block)
                        assert key not in used, (stage, cycle)
                        used.add(key)


class TestExecutors:
    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_strict_matches_reference_forward(self, n, rng):
        prime = prime_for(n)
        unit = DualCoreNttUnit(n, prime, CONFIG)
        reference = NegacyclicTransformer(n, prime)
        values = rng.integers(0, prime, n)
        result, _ = unit.run_strict(values)
        assert np.array_equal(result, reference.forward(values))

    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_strict_matches_reference_inverse(self, n, rng):
        prime = prime_for(n)
        unit = DualCoreNttUnit(n, prime, CONFIG)
        reference = NegacyclicTransformer(n, prime)
        values = rng.integers(0, prime, n)
        result, _ = unit.run_strict(values, inverse=True)
        assert np.array_equal(result, reference.inverse(values))

    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_fast_equals_strict(self, n, rng):
        prime = prime_for(n)
        unit = DualCoreNttUnit(n, prime, CONFIG)
        values = rng.integers(0, prime, n)
        strict_result, strict_cycles = unit.run_strict(values)
        fast_result, fast_cycles = unit.run_fast(values)
        assert np.array_equal(strict_result, fast_result)
        assert strict_cycles == fast_cycles

    def test_fast_equals_strict_inverse(self, rng):
        prime = prime_for(64)
        unit = DualCoreNttUnit(64, prime, CONFIG)
        values = rng.integers(0, prime, 64)
        strict_result, strict_cycles = unit.run_strict(values, inverse=True)
        fast_result, fast_cycles = unit.run_fast(values, inverse=True)
        assert np.array_equal(strict_result, fast_result)
        assert strict_cycles == fast_cycles

    def test_roundtrip_through_hardware(self, rng):
        prime = prime_for(128)
        unit = DualCoreNttUnit(128, prime, CONFIG)
        values = rng.integers(0, prime, 128)
        forward, _ = unit.run_fast(values)
        back, _ = unit.run_fast(forward, inverse=True)
        assert np.array_equal(back, values % prime)

    def test_single_core_functional(self, rng):
        config = replace(CONFIG, butterfly_cores_per_rpau=1)
        prime = prime_for(64)
        unit = DualCoreNttUnit(64, prime, config)
        reference = NegacyclicTransformer(64, prime)
        values = rng.integers(0, prime, 64)
        strict_result, strict_cycles = unit.run_strict(values)
        fast_result, fast_cycles = unit.run_fast(values)
        assert np.array_equal(strict_result, reference.forward(values))
        assert np.array_equal(fast_result, strict_result)
        assert strict_cycles == fast_cycles

    def test_rejects_wrong_length(self):
        unit = DualCoreNttUnit(64, prime_for(64), CONFIG)
        with pytest.raises(HardwareModelError):
            unit.run_fast(np.zeros(32, dtype=np.int64))


class TestCycleModel:
    def test_paper_ntt_instruction_cycles(self, paper_params):
        """The modelled NTT lands on Table II's 87,582 Arm cycles."""
        unit = DualCoreNttUnit(4096, paper_params.q_primes[0], CONFIG)
        fpga = unit.transform_cycles() + CONFIG.dispatch_overhead
        arm = CONFIG.fpga_to_arm_cycles(fpga)
        assert abs(arm - 87_582) / 87_582 < 0.02

    def test_paper_intt_instruction_cycles(self, paper_params):
        unit = DualCoreNttUnit(4096, paper_params.q_primes[0], CONFIG)
        fpga = (unit.transform_cycles() + unit.scale_pass_cycles()
                + CONFIG.dispatch_overhead)
        arm = CONFIG.fpga_to_arm_cycles(fpga)
        assert abs(arm - 102_043) / 102_043 < 0.04

    def test_two_cores_nearly_halve_cycles(self):
        prime = prime_for(256)
        dual = DualCoreNttUnit(256, prime, CONFIG)
        single = DualCoreNttUnit(
            256, prime, replace(CONFIG, butterfly_cores_per_rpau=1)
        )
        ratio = single.transform_cycles() / dual.transform_cycles()
        assert 1.4 < ratio < 2.0

    def test_twiddle_rom_removes_bubbles(self):
        """Paper Sec. V-A4: no ROM -> ~20% more cycles (prior work [20])."""
        prime = prime_for(256)
        with_rom = DualCoreNttUnit(256, prime, CONFIG)
        without = DualCoreNttUnit(
            256, prime, replace(CONFIG, twiddle_rom=False)
        )
        ratio = without.transform_cycles() / with_rom.transform_cycles()
        assert 1.10 < ratio < 1.25

    def test_strict_cycles_scale_with_n(self):
        prime64, prime256 = prime_for(64), prime_for(256)
        small = DualCoreNttUnit(64, prime64, CONFIG).transform_cycles()
        large = DualCoreNttUnit(256, prime256, CONFIG).transform_cycles()
        assert large > small
