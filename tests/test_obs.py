"""The observability layer: registry, tracing, timeline export.

Covers the :mod:`repro.obs` substrate itself (scoped registries,
span trees, Chrome trace validation) plus the ISSUE's acceptance
criterion: a Mult-heavy program run on both backends yields a
TraceReport whose per-op transform counts reconcile exactly with the
registry's counter diff, and both exports validate against the
trace-event schema.
"""

from __future__ import annotations

import json

import pytest

from repro.api import LocalBackend, Session, SimulatedBackend
from repro.cli import main
from repro.nttmath.batch import TRANSFORM_COUNTER, transform_counts
from repro.obs import (
    MetricsRegistry,
    Span,
    TraceReport,
    Tracer,
    active_tracer,
    counter,
    current_registry,
    diff_snapshots,
    gauge,
    histogram,
    maybe_span,
    render_prometheus,
    scoped_metrics,
    spans_to_chrome,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.serve.telemetry import LatencySummary, Telemetry


def mult_tree_program(session: Session):
    """A Mult-heavy balanced product tree: (a*b)*(c*d) + a*b."""
    leaves = [session.encrypt([i + 1, i + 2]) for i in range(4)]
    t0 = leaves[0] * leaves[1]
    t1 = leaves[2] * leaves[3]
    return session.compile(t0 * t1 + t0, name="mult-tree")


# -- metrics registry ------------------------------------------------------------------


class TestRegistry:
    def test_counter_labels_and_value(self):
        c = counter("test_obs_events_total", "events", labels=("kind",))
        c.inc(kind="a")
        c.inc(2, kind="a")
        c.inc(5, kind="b")
        assert c.value(kind="a") == 3
        assert c.value(kind="b") == 5
        assert c.value(kind="unseen") == 0.0

    def test_counter_rejects_negative(self):
        c = counter("test_obs_neg_total", "monotone")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_label_mismatch_rejected(self):
        c = counter("test_obs_lbl_total", "labelled", labels=("kind",))
        with pytest.raises(ValueError):
            c.inc(1)  # missing the declared label
        with pytest.raises(ValueError):
            c.inc(1, kind="x", extra="y")

    def test_conflicting_registration_rejected(self):
        counter("test_obs_clash_total", "first", labels=("a",))
        with pytest.raises(ValueError):
            gauge("test_obs_clash_total", "different kind")

    def test_scoped_registry_isolates(self):
        c = counter("test_obs_scope_total", "scoped")
        c.inc(1)
        outer = current_registry()
        with scoped_metrics() as inner:
            assert current_registry() is inner
            assert c.value() == 0.0  # fresh plane
            c.inc(10)
            assert c.value() == 10
        assert current_registry() is outer
        assert c.value() == 1  # inner writes never leaked out

    def test_scoped_accepts_supplied_registry(self):
        c = counter("test_obs_supplied_total", "supplied")
        mine = MetricsRegistry()
        with scoped_metrics(mine):
            c.inc(7)
        with scoped_metrics(mine):
            assert c.value() == 7  # same plane re-installed

    def test_gauge_sets_current_value(self):
        g = gauge("test_obs_depth", "depth")
        g.set(3)
        g.set(1.5)
        assert g.value() == 1.5

    def test_histogram_snapshot_series(self):
        h = histogram("test_obs_lat", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)  # lands in +Inf
        snap = current_registry().snapshot()
        assert snap["test_obs_lat_count"] == 3
        assert snap["test_obs_lat_sum"] == pytest.approx(5.55)
        assert snap['test_obs_lat_bucket{le="0.1"}'] == 1
        assert snap['test_obs_lat_bucket{le="1"}'] == 2
        assert snap['test_obs_lat_bucket{le="+Inf"}'] == 3

    def test_snapshot_diff_counts_new_series_from_zero(self):
        c = counter("test_obs_diff_total", "diff", labels=("k",))
        c.inc(2, k="old")
        before = current_registry().snapshot()
        c.inc(3, k="old")
        c.inc(4, k="new")
        delta = diff_snapshots(before, current_registry().snapshot())
        assert delta == {
            'test_obs_diff_total{k="old"}': 3,
            'test_obs_diff_total{k="new"}': 4,
        }

    def test_diff_omits_unchanged_series(self):
        c = counter("test_obs_same_total", "same")
        c.inc(1)
        snap = current_registry().snapshot()
        assert diff_snapshots(snap, snap) == {}

    def test_reset_instrument_is_targeted(self):
        a = counter("test_obs_reset_a_total", "a")
        b = counter("test_obs_reset_b_total", "b")
        a.inc(1)
        b.inc(1)
        current_registry().reset_instrument("test_obs_reset_a_total")
        assert a.value() == 0.0
        assert b.value() == 1

    def test_prometheus_exposition(self):
        c = counter("test_obs_prom_total", "help text", labels=("kind",))
        c.inc(2, kind="x")
        g = gauge("test_obs_prom_depth", "queue depth")
        g.set(4)
        text = render_prometheus()
        assert "# HELP test_obs_prom_total help text" in text
        assert "# TYPE test_obs_prom_total counter" in text
        assert 'test_obs_prom_total{kind="x"} 2' in text
        assert "# TYPE test_obs_prom_depth gauge" in text
        assert "test_obs_prom_depth 4" in text

    def test_prometheus_histogram_cumulative_buckets(self):
        h = histogram("test_obs_prom_hist", "hist", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        text = render_prometheus()
        assert 'test_obs_prom_hist_bucket{le="1"} 1' in text
        assert 'test_obs_prom_hist_bucket{le="2"} 2' in text
        assert 'test_obs_prom_hist_bucket{le="+Inf"} 2' in text
        assert "test_obs_prom_hist_count 2" in text


# -- span trees and reports ------------------------------------------------------------


class TestTracer:
    def test_span_nesting_and_walk_order(self):
        tracer = Tracer("run")
        with tracer.span("outer", kind="op"), \
                tracer.span("inner", kind="transform"):
            pass
        root = tracer.finish()
        names = [s.name for s in root.walk()]
        assert names == ["run", "outer", "inner"]
        assert root.children[0].children[0].name == "inner"
        assert all(s.duration >= 0 for s in root.walk())
        assert root.start <= root.children[0].start
        assert root.children[0].end <= root.end

    def test_live_span_attrs(self):
        tracer = Tracer("run")
        with tracer.span("op", kind="op", op="MULTIPLY") as sp:
            sp.attrs["transforms"] = {"forward_rows": 3}
        report = tracer.report()
        (op,) = report.spans("op")
        assert op.attrs["transforms"] == {"forward_rows": 3}

    def test_maybe_span_noop_without_tracer(self):
        assert active_tracer() is None
        with maybe_span("ntt.forward", rows=4) as sp:
            assert sp is None

    def test_maybe_span_attaches_to_active_tracer(self):
        tracer = Tracer("run")
        with tracer.activate():
            assert active_tracer() is tracer
            with maybe_span("ntt.forward", rows=4) as sp:
                assert sp is not None
        assert active_tracer() is None
        (t,) = tracer.report().spans("transform")
        assert t.name == "ntt.forward" and t.attrs["rows"] == 4

    def test_add_records_sim_interval(self):
        tracer = Tracer("run", clock="sim")
        tracer.add("job", "job", start=1.0, end=3.0, coprocessor=0)
        (job,) = tracer.report().spans("job")
        assert job.clock == "sim"
        assert job.duration == 2.0

    def test_rollup_groups_by_op(self):
        root = Span("run", kind="program", start=0, end=10)
        root.children = [
            Span("multiply", kind="op", start=0, end=4,
                 attrs={"op": "MULTIPLY", "bytes_moved": 100,
                        "transforms": {"forward_rows": 6,
                                       "forward_calls": 2}}),
            Span("multiply", kind="op", start=4, end=6,
                 attrs={"op": "MULTIPLY", "bytes_moved": 100}),
            Span("add", kind="op", start=6, end=7, attrs={"op": "ADD"}),
        ]
        rollup = TraceReport(root).rollup()
        assert rollup["MULTIPLY"]["count"] == 2
        assert rollup["MULTIPLY"]["seconds"] == pytest.approx(6.0)
        assert rollup["MULTIPLY"]["transform_rows"] == 6
        assert rollup["MULTIPLY"]["transform_calls"] == 2
        assert rollup["MULTIPLY"]["bytes_moved"] == 200
        assert rollup["ADD"]["count"] == 1

    def test_transform_totals_skip_nested_transform_spans(self):
        # The op span's diff already covers its nested engine span;
        # counting both would double the rows.
        op = Span("multiply", kind="op", start=0, end=2,
                  attrs={"transforms": {"forward_rows": 6}})
        op.children = [Span("ntt.forward", kind="transform", start=0,
                            end=1, attrs={"rows": 6})]
        root = Span("run", kind="program", start=0, end=2,
                    children=[op])
        assert TraceReport(root).transform_totals() == {"forward_rows": 6}

    def test_critical_path_follows_longest_chain(self):
        # Diamond: 0 -> (1 slow, 2 fast) -> 3; the path goes via 1.
        mk = lambda name, node, deps, start, end: Span(  # noqa: E731
            name, kind="op", start=start, end=end,
            attrs={"op": name, "node": node, "deps": deps},
        )
        root = Span("run", kind="program", start=0, end=10, children=[
            mk("a", 10, (), 0, 1),
            mk("slow", 11, (10,), 1, 5),
            mk("fast", 12, (10,), 1, 2),
            mk("join", 13, (11, 12), 5, 6),
        ])
        report = TraceReport(root)
        assert [s.name for s in report.critical_path()] \
            == ["a", "slow", "join"]
        assert report.critical_path_seconds() == pytest.approx(6.0)

    def test_critical_path_empty_without_ops(self):
        report = TraceReport(Span("run", kind="program"))
        assert report.critical_path() == []
        assert report.critical_path_seconds() == 0.0


# -- chrome trace export and validation ------------------------------------------------


class TestTimeline:
    def test_tracer_tree_exports_and_validates(self):
        tracer = Tracer("run")
        with tracer.span("op", kind="op", op="MULTIPLY"), \
                tracer.span("ntt.forward", kind="transform"):
            pass
        events = spans_to_chrome(tracer.finish())
        assert validate_chrome_trace(events)
        slices = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in slices] == ["run", "op", "ntt.forward"]
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in slices)

    def test_validator_rejects_negative_duration(self):
        events = [{"ph": "X", "name": "bad", "ts": 0.0, "dur": -1.0,
                   "pid": 0, "tid": 0}]
        with pytest.raises(ValueError, match="negative duration"):
            validate_chrome_trace(events)

    def test_validator_rejects_partial_overlap(self):
        events = [
            {"ph": "X", "name": "a", "ts": 0.0, "dur": 10.0,
             "pid": 0, "tid": 0},
            {"ph": "X", "name": "b", "ts": 5.0, "dur": 10.0,
             "pid": 0, "tid": 0},
        ]
        with pytest.raises(ValueError, match="partially"):
            validate_chrome_trace(events)

    def test_validator_allows_disjoint_and_nested(self):
        events = [
            {"ph": "X", "name": "a", "ts": 0.0, "dur": 10.0,
             "pid": 0, "tid": 0},
            {"ph": "X", "name": "nested", "ts": 2.0, "dur": 3.0,
             "pid": 0, "tid": 0},
            {"ph": "X", "name": "later", "ts": 20.0, "dur": 1.0,
             "pid": 0, "tid": 0},
            # A different lane may overlap lane 0 freely.
            {"ph": "X", "name": "other", "ts": 5.0, "dur": 100.0,
             "pid": 0, "tid": 1},
        ]
        assert validate_chrome_trace(events)

    def test_validator_rejects_missing_phase(self):
        with pytest.raises(ValueError, match="missing 'ph'"):
            validate_chrome_trace([{"name": "x"}])

    def test_write_chrome_trace_roundtrip(self, tmp_path):
        tracer = Tracer("run")
        with tracer.span("op", kind="op"):
            pass
        path = write_chrome_trace(tmp_path / "t.json",
                                  spans_to_chrome(tracer.finish()))
        data = json.loads(path.read_text())
        assert data["displayTimeUnit"] == "ms"
        assert validate_chrome_trace(data)


# -- telemetry edge cases (satellite) --------------------------------------------------


class TestTelemetryEdges:
    def test_merged_empty_is_valid(self):
        merged = Telemetry.merged([])
        assert merged.num_coprocessors == 0
        assert merged.latencies == []
        assert merged.latency_summary().count == 0
        assert merged.mean_queue_depth() == 0.0
        assert merged.max_queue_depth == 0

    def test_merged_disjoint_parts(self):
        a = Telemetry(num_coprocessors=1)
        a.record_completion(0, 1.0, [("gold", 0.1)], 0)
        a.record_queue_depth(0.0, 2)
        b = Telemetry(num_coprocessors=2)
        b.record_completion(1, 2.0, [("silver", 0.3)], 1)
        b.record_queue_depth(1.0, 4)
        merged = Telemetry.merged([a, b])
        assert merged.num_coprocessors == 3
        assert merged.busy_seconds == [1.0, 0.0, 2.0]
        assert sorted(merged.latencies) == [0.1, 0.3]
        assert merged.tenant_latencies == {"gold": [0.1],
                                           "silver": [0.3]}
        assert merged.queue_depth_trace == [(0.0, 2), (1.0, 4)]
        assert merged.sla_violations == 1

    def test_merged_with_idle_shard(self):
        busy = Telemetry(num_coprocessors=1)
        busy.record_completion(0, 1.0, [("t", 0.2)], 0)
        idle = Telemetry(num_coprocessors=1)
        merged = Telemetry.merged([busy, idle])
        assert merged.latency_summary().count == 1
        assert merged.busy_seconds == [1.0, 0.0]

    def test_latency_summary_single_sample(self):
        summary = LatencySummary.of([0.25])
        assert summary.count == 1
        assert summary.mean == summary.p50 == summary.p95 \
            == summary.p99 == summary.max == 0.25

    def test_zero_op_program_traces_cleanly(self, toy_params):
        # A program that is just an input: no lowered ops at all.
        session = Session(toy_params, seed=5)
        handle = session.encrypt([1, 2, 3])
        program = session.compile(handle, name="identity")
        assert program.num_ops == 0
        result = LocalBackend(session).run(program)
        trace = result.trace
        assert trace.spans("op") == []
        assert trace.rollup() == {}
        assert trace.critical_path() == []
        events = spans_to_chrome(trace.root)
        assert validate_chrome_trace(events)


# -- the acceptance criterion ----------------------------------------------------------


class TestAcceptance:
    def test_local_backend_trace_reconciles_with_registry(self,
                                                          toy_params):
        session = Session(toy_params, seed=11)
        program = mult_tree_program(session)
        backend = LocalBackend(session)
        before = current_registry().snapshot()
        result = backend.run(program)
        after = current_registry().snapshot()

        trace = result.trace
        assert trace is backend.last_trace
        totals = trace.transform_totals()
        assert totals  # a Mult-heavy program must transform

        # The per-op sums must equal the registry's counter diff and
        # the run-level counter window, exactly.
        name = TRANSFORM_COUNTER.spec.name
        registry_diff = {
            series.split('kind="')[1].rstrip('"}'): int(delta)
            for series, delta in diff_snapshots(before, after).items()
            if series.startswith(name + "{")
        }
        assert totals == registry_diff
        assert totals == {k: v
                          for k, v in backend.last_transform_counts.items()
                          if v}

        # Every MULTIPLY is an op span with node/deps for the DAG.
        rollup = trace.rollup()
        assert rollup["MULTIPLY"]["count"] == 3
        assert rollup["MULTIPLY"]["bytes_moved"] > 0
        path = trace.critical_path()
        assert path, "mult tree has a non-trivial critical path"
        assert trace.critical_path_seconds() <= trace.total_seconds

        # And the functional export validates against the schema.
        assert validate_chrome_trace(spans_to_chrome(trace.root))

    def test_simulated_backend_trace_and_timeline(self, toy_params):
        session = Session(toy_params, seed=11)
        program = mult_tree_program(session)
        backend = SimulatedBackend.over_runtime(toy_params)
        run = backend.run(program, requests=3, seed=0)
        assert len(run.completed) == 3

        trace = run.trace()
        assert trace.root.clock == "sim"
        requests = trace.spans("request")
        assert len(requests) == 3
        ops = trace.spans("op")
        assert len(ops) == 3 * program.num_ops
        assert all(s.clock == "sim" and s.duration >= 0 for s in ops)
        # Futures carry their own request span.
        assert all(f.trace in requests for f in run.futures)

        events = run.timeline()
        assert validate_chrome_trace(events)
        job_slices = [e for e in events if e["ph"] == "X"]
        assert len(job_slices) == 3 * program.num_ops

    def test_cluster_report_carries_registry_snapshot(self, toy_params):
        session = Session(toy_params, seed=11)
        program = mult_tree_program(session)
        backend = SimulatedBackend.over_cluster(toy_params, 2)
        run = backend.run(program, requests=4, num_tenants=4, seed=0)
        snapshot = run.report.registry_snapshot
        # The simulated backend's resident-operand cache reports
        # through the registry, so the drain-time snapshot sees it.
        assert any("resident_cache" in series for series in snapshot)
        assert validate_chrome_trace(run.timeline())


# -- the CLI surface -------------------------------------------------------------------


class TestTraceCli:
    def test_trace_command_writes_valid_exports(self, tmp_path, capsys):
        assert main(["trace", "mult", "--out", str(tmp_path),
                     "--requests", "5"]) == 0
        out = capsys.readouterr().out
        assert "MISMATCH" not in out
        assert "(OK)" in out
        assert "# TYPE repro_ntt_transforms_total counter" in out
        for stem in ("mult_functional", "mult_simulated"):
            data = json.loads((tmp_path / f"{stem}.json").read_text())
            assert validate_chrome_trace(data)
            assert data["traceEvents"], stem


# -- transform counters through the registry -------------------------------------------


class TestTransformCounters:
    def test_counts_resolve_against_active_registry(self, toy_context,
                                                    toy_keys):
        # The autouse fixture scopes this test; a nested scope must
        # see zeros while the outer counts stay put.
        from repro.nttmath.batch import basis_transformer

        outer_before = transform_counts()
        transformer = basis_transformer(
            toy_context.q_basis.primes, toy_context.params.n)
        rows = toy_context.q_basis.size
        import numpy as np

        values = np.ones((rows, toy_context.params.n), dtype=np.int64)
        transformer.forward(values)
        outer = transform_counts()
        assert outer["forward_rows"] \
            == outer_before["forward_rows"] + rows
        with scoped_metrics():
            assert transform_counts()["forward_rows"] == 0
            transformer.forward(values)
            assert transform_counts()["forward_rows"] == rows
        assert transform_counts() == outer
