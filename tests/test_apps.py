"""Tests for the three cloud applications (paper Sec. III-A)."""

import numpy as np
import pytest

from repro.apps.forecasting import SmartGridAggregator, plaintext_reference
from repro.apps.lookup import EncryptedLookupTable, selection_depth
from repro.apps.rasta_like import RastaLikeCipher
from repro.errors import ParameterError
from repro.fv.encoder import Plaintext
from repro.fv.noise import noise_budget_bits
from repro.fv.scheme import FvContext
from repro.params import mini


@pytest.fixture(scope="module")
def batch_context():
    return FvContext(mini(t=65537), seed=21)


@pytest.fixture(scope="module")
def batch_keys(batch_context):
    return batch_context.keygen()


@pytest.fixture(scope="module")
def lut_context():
    return FvContext(mini(t=257), seed=22)


@pytest.fixture(scope="module")
def lut_keys(lut_context):
    return lut_context.keygen()


@pytest.fixture(scope="module")
def bit_context():
    return FvContext(mini(t=2), seed=23)


@pytest.fixture(scope="module")
def bit_keys(bit_context):
    return bit_context.keygen()


class TestForecasting:
    @pytest.fixture(scope="class")
    def aggregator(self, batch_context, batch_keys):
        return SmartGridAggregator(batch_context, batch_keys)

    @pytest.fixture(scope="class")
    def readings(self):
        rng = np.random.default_rng(41)
        return rng.integers(0, 300, size=(6, 24))

    @pytest.fixture(scope="class")
    def meter_cts(self, aggregator, readings):
        return [aggregator.encrypt_readings(r) for r in readings]

    def test_total(self, aggregator, readings, meter_cts):
        total = aggregator.decrypt_slots(aggregator.total(meter_cts), 24)
        assert np.array_equal(total, readings.sum(axis=0) % 65537)

    def test_sum_of_squares(self, aggregator, readings, meter_cts):
        result = aggregator.decrypt_slots(
            aggregator.sum_of_squares(meter_cts), 24
        )
        assert np.array_equal(result, (readings ** 2).sum(axis=0) % 65537)

    def test_weighted_forecast(self, aggregator, readings, meter_cts):
        weights = [4, 2, 1]
        result = aggregator.decrypt_slots(
            aggregator.weighted_forecast(meter_cts[:3], weights), 24
        )
        reference = plaintext_reference(readings, weights, 65537)
        assert np.array_equal(result, reference["forecast"])

    def test_individual_readings_stay_hidden(self, aggregator, readings,
                                             meter_cts):
        """Ciphertexts of different meters are not comparable."""
        assert not np.array_equal(meter_cts[0].c0.residues,
                                  meter_cts[1].c0.residues)

    def test_grand_total_via_rotations(self, aggregator, readings,
                                       meter_cts, batch_context,
                                       batch_keys):
        """Galois-rotation extension: one number for the whole fleet."""
        from repro.fv.galois import GaloisEngine

        engine = GaloisEngine(batch_context)
        summation_keys = engine.summation_keygen(batch_keys.secret)
        total_ct = aggregator.grand_total(meter_cts, summation_keys)
        decoded = aggregator.decrypt_slots(total_ct, 1)
        assert decoded[0] == int(readings.sum()) % 65537

    def test_weight_mismatch_rejected(self, aggregator, meter_cts):
        with pytest.raises(ParameterError):
            aggregator.weighted_forecast(meter_cts[:3], [1, 2])

    def test_empty_meter_list_rejected(self, aggregator):
        with pytest.raises(ParameterError):
            aggregator.total([])


class TestLookup:
    TABLE = [13, 42, 7, 99, 1, 64, 250, 8]

    @pytest.fixture(scope="class")
    def server(self, lut_context, lut_keys):
        return EncryptedLookupTable(lut_context, lut_keys, self.TABLE)

    def test_every_index_retrieves_correctly(self, server):
        for index in range(len(self.TABLE)):
            reply = server.lookup(server.encrypt_index(index))
            assert server.decrypt_reply(reply) == self.TABLE[index]

    def test_reply_has_noise_budget_left(self, server, lut_context,
                                         lut_keys):
        reply = server.lookup(server.encrypt_index(2))
        assert noise_budget_bits(lut_context, reply, lut_keys.secret) > 0

    def test_selection_depth_paper_sizing(self):
        """Sec. III-A: a 2^16-entry table fits the depth-4 budget."""
        assert selection_depth(1 << 16) == 4
        assert selection_depth(16) == 2
        assert selection_depth(2) == 0

    def test_rejects_out_of_range_index(self, server):
        with pytest.raises(ParameterError):
            server.encrypt_index(len(self.TABLE))

    def test_rejects_wrong_bit_count(self, server, lut_context, lut_keys):
        bits = server.encrypt_index(1)
        with pytest.raises(ParameterError):
            server.lookup(bits[:-1])

    def test_rejects_oversized_values(self, lut_context, lut_keys):
        with pytest.raises(ParameterError):
            EncryptedLookupTable(lut_context, lut_keys, [1, 300])

    def test_rejects_non_power_of_two_table(self, lut_context, lut_keys):
        with pytest.raises(ParameterError):
            EncryptedLookupTable(lut_context, lut_keys, [1, 2, 3])


class TestRastaLike:
    def test_homomorphic_evaluation_matches_reference(self, bit_context,
                                                      bit_keys):
        cipher = RastaLikeCipher(width=6, rounds=2, seed=9)
        rng = np.random.default_rng(77)
        bits = rng.integers(0, 2, 6)
        n = bit_context.params.n
        bit_cts = [
            bit_context.encrypt(Plaintext.from_list([int(b)], n, 2),
                                bit_keys.public)
            for b in bits
        ]
        out = cipher.evaluate_encrypted(bit_context, bit_keys, bit_cts)
        got = RastaLikeCipher.decrypt_state(bit_context, bit_keys, out)
        assert np.array_equal(got, cipher.encrypt_reference(bits))

    def test_four_rounds_within_depth_budget(self, bit_context, bit_keys):
        """Four chi rounds = multiplicative depth 4 (the paper's budget)."""
        cipher = RastaLikeCipher(width=4, rounds=4, seed=11)
        bits = np.array([1, 0, 1, 1])
        n = bit_context.params.n
        bit_cts = [
            bit_context.encrypt(Plaintext.from_list([int(b)], n, 2),
                                bit_keys.public)
            for b in bits
        ]
        out = cipher.evaluate_encrypted(bit_context, bit_keys, bit_cts)
        got = RastaLikeCipher.decrypt_state(bit_context, bit_keys, out)
        assert np.array_equal(got, cipher.encrypt_reference(bits))
        budget = noise_budget_bits(bit_context, out[0], bit_keys.secret)
        assert budget > 0

    def test_reference_is_deterministic(self):
        cipher = RastaLikeCipher(width=5, rounds=3, seed=2)
        bits = np.array([1, 1, 0, 0, 1])
        assert np.array_equal(cipher.encrypt_reference(bits),
                              cipher.encrypt_reference(bits))

    def test_different_seeds_different_ciphers(self):
        bits = np.array([1, 0, 1, 0])
        a = RastaLikeCipher(width=4, rounds=2, seed=1)
        b = RastaLikeCipher(width=4, rounds=2, seed=2)
        assert not np.array_equal(a.encrypt_reference(bits),
                                  b.encrypt_reference(bits))

    def test_rejects_narrow_state(self):
        with pytest.raises(ParameterError):
            RastaLikeCipher(width=2, rounds=1)

    def test_requires_binary_plaintext_modulus(self, lut_context, lut_keys):
        cipher = RastaLikeCipher(width=4, rounds=1)
        with pytest.raises(ParameterError):
            cipher.evaluate_encrypted(lut_context, lut_keys, [None] * 4)


class TestSessionFirstConstruction:
    """The facade path of the apps (legacy dual-accept covered above)."""

    def test_forecasting_rejects_non_batch_session(self):
        from repro.api import Session
        from repro.params import mini

        with pytest.raises(ParameterError):
            SmartGridAggregator(Session(mini(t=257), seed=60))

    def test_lookup_session_first(self):
        from repro.api import OpKind, Session
        from repro.params import mini

        session = Session(mini(t=257), seed=61)
        table = [5, 6, 7, 8]
        server = EncryptedLookupTable(session, table)
        bits = server.encrypt_index(2)
        assert server.decrypt_reply(server.lookup(bits)) == 7
        # Negated bits are shared across table entries: exactly one
        # NEGATE per index bit in the compiled graph.
        program = server.lookup_program(server.encrypt_index(1))
        assert program.op_counts()[OpKind.NEGATE] == server.index_bits
