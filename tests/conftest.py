"""Shared fixtures: parameter sets, contexts, and keys.

Key generation is the slow part of the suite, so contexts and key sets
are session-scoped; tests must not mutate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fv.scheme import FvContext
from repro.obs import scoped_metrics
from repro.params import hpca19, mini, toy


@pytest.fixture(autouse=True)
def _isolated_metrics():
    """Give every test its own metrics registry plane.

    Transform counters, cache events and any other registered
    instrument land in a per-test registry, so tests can assert on (or
    reset) counters without observing — or corrupting — each other.
    """
    with scoped_metrics() as registry:
        yield registry


@pytest.fixture(scope="session")
def toy_params():
    return toy()


@pytest.fixture(scope="session")
def mini_params():
    return mini()


@pytest.fixture(scope="session")
def paper_params():
    return hpca19()


@pytest.fixture(scope="session")
def toy_context(toy_params):
    return FvContext(toy_params, seed=1234)


@pytest.fixture(scope="session")
def toy_keys(toy_context):
    return toy_context.keygen()


@pytest.fixture(scope="session")
def mini_context(mini_params):
    return FvContext(mini_params, seed=5678)


@pytest.fixture(scope="session")
def mini_keys(mini_context):
    return mini_context.keygen()


@pytest.fixture()
def rng():
    return np.random.default_rng(97)
