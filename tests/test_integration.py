"""Integration tests: full client -> cloud -> client flows across the
serialisation boundary and the simulated hardware (paper Fig. 11)."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.fv.ciphertext import Ciphertext
from repro.fv.encoder import Plaintext
from repro.fv.evaluator import Evaluator
from repro.fv.noise import noise_budget_bits
from repro.hw.coprocessor import Coprocessor
from repro.nttmath.ntt import negacyclic_convolution
from repro.system.server import CloudServer
from repro.system.workloads import JobKind, mixed_workload


class TestSerialisationRoundtrip:
    def test_ciphertext_wire_format(self, mini_context, mini_keys, rng):
        params = mini_context.params
        plain = Plaintext(rng.integers(0, params.t, params.n), params.t)
        ct = mini_context.encrypt(plain, mini_keys.public)
        blob = ct.to_bytes()
        assert len(blob) == params.ciphertext_bytes
        restored = Ciphertext.from_bytes(blob, params,
                                         mini_context.q_basis)
        assert np.array_equal(restored.c0.residues, ct.c0.residues)
        assert np.array_equal(restored.c1.residues, ct.c1.residues)

    def test_decrypt_after_roundtrip(self, mini_context, mini_keys, rng):
        params = mini_context.params
        plain = Plaintext(rng.integers(0, params.t, params.n), params.t)
        ct = mini_context.encrypt(plain, mini_keys.public)
        restored = Ciphertext.from_bytes(ct.to_bytes(), params,
                                         mini_context.q_basis)
        assert mini_context.decrypt(restored, mini_keys.secret) == plain

    def test_wire_size_drives_dma_model(self, paper_params):
        """The serialised polynomial is the Table III payload."""
        assert paper_params.poly_bytes == 98_304

    def test_rejects_truncated_blob(self, mini_context, mini_keys, rng):
        params = mini_context.params
        plain = Plaintext.zero(params.n, params.t)
        ct = mini_context.encrypt(plain, mini_keys.public)
        with pytest.raises(ParameterError):
            Ciphertext.from_bytes(ct.to_bytes()[:-1], params,
                                  mini_context.q_basis)

    def test_three_part_round_trip(self, mini_context, mini_keys, rng):
        """Pre-relinearisation (size-3) ciphertexts must survive the
        wire: serialise after multiply_raw, restore, relinearise the
        restored copy, decrypt — all bit-exact."""
        params = mini_context.params
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        b = Plaintext(rng.integers(0, params.t, params.n), params.t)
        evaluator = Evaluator(mini_context)
        raw = evaluator.multiply_raw(
            mini_context.encrypt(a, mini_keys.public),
            mini_context.encrypt(b, mini_keys.public),
        )
        assert raw.size == 3
        blob = raw.to_bytes()
        assert len(blob) == raw.byte_size() == 3 * params.poly_bytes
        restored = Ciphertext.from_bytes(blob, params,
                                         mini_context.q_basis)
        assert restored.size == 3
        for part, original in zip(restored.parts, raw.parts, strict=True):
            assert np.array_equal(part.residues, original.residues)
        relin = evaluator.relinearize(restored, mini_keys.relin)
        expected = evaluator.relinearize(raw, mini_keys.relin)
        assert mini_context.decrypt(relin, mini_keys.secret) == \
            mini_context.decrypt(expected, mini_keys.secret)

    def test_three_part_file_truncation_detected(self, tmp_path,
                                                 mini_context, mini_keys,
                                                 rng):
        """A 3-part file cut down to a *valid 2-part length* must not
        load silently — the header's part count catches it."""
        from repro.errors import EncodingError
        from repro.io import load_ciphertext, save_ciphertext

        params = mini_context.params
        plain = Plaintext(rng.integers(0, params.t, params.n), params.t)
        evaluator = Evaluator(mini_context)
        raw = evaluator.multiply_raw(
            mini_context.encrypt(plain, mini_keys.public),
            mini_context.encrypt(plain, mini_keys.public),
        )
        path = tmp_path / "three_part.ct"
        save_ciphertext(path, raw)
        restored = load_ciphertext(path, params)
        assert restored.size == 3

        truncated = tmp_path / "truncated.ct"
        truncated.write_bytes(
            path.read_bytes()[:-params.poly_bytes]
        )
        with pytest.raises(EncodingError):
            load_ciphertext(truncated, params)


class TestClientCloudFlow:
    def test_cloud_mult_through_wire_format(self, mini_context, mini_keys,
                                            rng):
        """Client serialises, 'cloud' coprocessor computes, client
        deserialises and decrypts — the full Fig. 11 path."""
        params = mini_context.params
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        b = Plaintext(rng.integers(0, params.t, params.n), params.t)
        blob_a = mini_context.encrypt(a, mini_keys.public).to_bytes()
        blob_b = mini_context.encrypt(b, mini_keys.public).to_bytes()

        # Cloud side: reconstruct, multiply on the simulated hardware.
        ct_a = Ciphertext.from_bytes(blob_a, params, mini_context.q_basis)
        ct_b = Ciphertext.from_bytes(blob_b, params, mini_context.q_basis)
        coprocessor = Coprocessor(params)
        result, report = coprocessor.mult(ct_a, ct_b, mini_keys.relin)
        reply = result.to_bytes()
        assert report.total_cycles > 0

        # Client side: decrypt the reply.
        restored = Ciphertext.from_bytes(reply, params,
                                         mini_context.q_basis)
        expected = negacyclic_convolution(a.coeffs.tolist(),
                                          b.coeffs.tolist(), params.t)
        assert mini_context.decrypt(
            restored, mini_keys.secret
        ).coeffs.tolist() == expected

    def test_mixed_pipeline_hw_equals_sw(self, mini_context, mini_keys,
                                         rng):
        """(a*b) + c - d evaluated on HW matches the software evaluator
        and the plaintext computation."""
        params = mini_context.params
        evaluator = Evaluator(mini_context)
        coprocessor = Coprocessor(params)
        plains = [
            Plaintext(rng.integers(0, params.t, params.n), params.t)
            for _ in range(4)
        ]
        cts = [mini_context.encrypt(p, mini_keys.public) for p in plains]

        hw_prod, _ = coprocessor.mult(cts[0], cts[1], mini_keys.relin)
        hw_sum, _ = coprocessor.add(hw_prod, cts[2])
        hw_result = mini_context.sub(hw_sum, cts[3])

        sw_prod = evaluator.multiply(cts[0], cts[1], mini_keys.relin)
        sw_result = mini_context.sub(
            mini_context.add(sw_prod, cts[2]), cts[3]
        )
        assert np.array_equal(hw_result.c0.residues,
                              sw_result.c0.residues)

        product = negacyclic_convolution(
            plains[0].coeffs.tolist(), plains[1].coeffs.tolist(), params.t
        )
        expected = (np.array(product) + plains[2].coeffs
                    - plains[3].coeffs) % params.t
        assert mini_context.decrypt(
            hw_result, mini_keys.secret
        ).coeffs.tolist() == expected.tolist()

    def test_repeated_hw_mults_track_sw_noise(self, mini_context,
                                              mini_keys):
        """A depth-3 chain on the coprocessor stays decryptable and
        bit-identical to the software evaluator at every level."""
        params = mini_context.params
        evaluator = Evaluator(mini_context)
        coprocessor = Coprocessor(params)
        plain = Plaintext.from_list([1, 1], params.n, params.t)
        hw_ct = mini_context.encrypt(plain, mini_keys.public)
        sw_ct = hw_ct
        for _ in range(3):
            hw_ct, _ = coprocessor.mult(hw_ct, hw_ct, mini_keys.relin)
            sw_ct = evaluator.multiply(sw_ct, sw_ct, mini_keys.relin)
            assert np.array_equal(hw_ct.c0.residues, sw_ct.c0.residues)
        assert noise_budget_bits(mini_context, hw_ct,
                                 mini_keys.secret) > 0


class TestServerScheduling:
    def test_mixed_workload_end_to_end_timing(self, paper_params):
        server = CloudServer(paper_params)
        report = server.serve(mixed_workload(10, 4, seed=2))
        assert len(report.results) == 50
        # Adds are much faster than mults.
        add_latency = min(
            r.latency_seconds for r in report.results
            if r.job.kind is JobKind.ADD
        )
        mult_latency = min(
            r.latency_seconds for r in report.results
            if r.job.kind is JobKind.MULT
        )
        assert mult_latency > 5 * add_latency

    def test_load_balancing(self, paper_params):
        server = CloudServer(paper_params)
        report = server.serve(mixed_workload(8, 2, seed=5))
        per_coproc = {}
        for result in report.results:
            per_coproc.setdefault(result.coprocessor, 0)
            per_coproc[result.coprocessor] += 1
        counts = sorted(per_coproc.values())
        assert len(counts) == 2
        assert counts[0] >= len(report.results) // 4
