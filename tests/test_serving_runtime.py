"""Tests for the discrete-event serving runtime (repro.serve) and the
CostModel refactor, plus the workload-generator edge cases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.config import HardwareConfig
from repro.params import hpca19
from repro.serve import (
    BatchPolicy,
    DmaBatcher,
    EventHeap,
    EventKind,
    FifoScheduler,
    LatencySummary,
    ServingRuntime,
    ShortestJobFirstScheduler,
    Tenant,
    TenantSet,
    WeightedFairScheduler,
    WorkStealingScheduler,
    percentile,
    simulate,
)
from repro.serve.batching import network_amortized_upload_seconds
from repro.serve.schedulers import QueueEntry
from repro.system.server import CloudServer, CostModel, ServeReport
from repro.system.workloads import (
    Job,
    JobKind,
    mmpp_stream,
    mult_stream,
    multi_tenant_stream,
    poisson_stream,
)

CONFIG = HardwareConfig()


@pytest.fixture(scope="module")
def server():
    return CloudServer(hpca19(), CONFIG)


def make_scheduler(name):
    return {
        "fifo": FifoScheduler,
        "sjf": ShortestJobFirstScheduler,
        "wfq": WeightedFairScheduler,
        "steal": WorkStealingScheduler,
    }[name]()


ALL_POLICIES = ["fifo", "sjf", "wfq", "steal"]


def check_invariants(report, offered_jobs):
    """The scheduler invariants every policy must uphold."""
    # Conservation: every offered job either completed or was rejected,
    # exactly once.
    done = [r.job.index for r in report.results]
    rejected = [r.job.index for r in report.rejected]
    assert sorted(done + rejected) == sorted(j.index for j in offered_jobs)
    # Causality: no job starts (or finishes) before it arrives.
    for result in report.results:
        assert result.start_seconds >= result.job.arrival_seconds - 1e-12
        assert result.finish_seconds > result.start_seconds
    # Exclusivity: one batch at a time per coprocessor.
    per_coproc = {}
    for result in report.results:
        per_coproc.setdefault(result.coprocessor, set()).add(
            (result.start_seconds, result.finish_seconds)
        )
    for intervals in per_coproc.values():
        ordered = sorted(intervals)
        for (_s0, f0), (s1, _f1) in zip(ordered, ordered[1:], strict=False):
            assert s1 >= f0 - 1e-12


class TestCostModel:
    def test_cycle_model_built_once(self):
        cost = CostModel(hpca19(), CONFIG)
        calls = []
        original = cost.reference.instruction_cycle_model

        def counting():
            calls.append(1)
            return original()

        cost.reference.instruction_cycle_model = counting
        cost.mult_compute_seconds()
        cost.add_compute_seconds()
        cost.mult_compute_seconds()
        cost.add_compute_seconds()
        assert len(calls) == 1

    def test_compute_costs_cached(self):
        cost = CostModel(hpca19(), CONFIG)
        assert cost.add_compute_seconds() == cost.add_compute_seconds()
        assert cost.mult_compute_seconds() == cost.mult_compute_seconds()

    def test_server_delegates_to_cost_model(self, server):
        assert server.job_seconds(JobKind.MULT) == \
            server.cost.job_seconds(JobKind.MULT)
        assert server.mult_compute_seconds() == \
            server.cost.mult_compute_seconds()
        assert server.add_compute_seconds() == \
            server.cost.add_compute_seconds()


class TestServeReportWindow:
    def test_makespan_measured_from_first_arrival(self, server):
        """A late first arrival must not dilute throughput (satellite)."""
        offset = 5.0
        early = server.serve(mult_stream(40))
        late_jobs = [Job(index=i, kind=JobKind.MULT,
                         arrival_seconds=offset) for i in range(40)]
        late = server.serve(late_jobs)
        assert late.first_arrival_seconds == pytest.approx(offset)
        assert late.makespan_seconds == pytest.approx(early.makespan_seconds)
        assert late.throughput_per_second() == \
            pytest.approx(early.throughput_per_second())

    def test_empty_report(self):
        report = ServeReport()
        assert report.makespan_seconds == 0.0
        assert report.throughput_per_second() == 0.0


class TestEventHeap:
    def test_orders_by_time_then_insertion(self):
        heap = EventHeap()
        heap.push(2.0, EventKind.ARRIVAL, "late")
        heap.push(1.0, EventKind.ARRIVAL, "a")
        heap.push(1.0, EventKind.DISPATCH, "b")
        assert [heap.pop().payload for _ in range(3)] == ["a", "b", "late"]

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            EventHeap().push(-1.0, EventKind.ARRIVAL)


class TestEngineMatchesStaticLoop:
    def test_saturated_throughput_within_one_percent(self, server):
        """Acceptance: engine matches the analytic 400 Mult/s headline."""
        report = simulate(server, mult_stream(200))
        analytic = server.mult_throughput_per_second()
        assert abs(report.throughput_per_second() - analytic) / analytic \
            < 0.01

    @pytest.mark.parametrize("jobs", [
        mult_stream(50),
        poisson_stream(300.0, 0.5, seed=5),
        poisson_stream(600.0, 0.3, seed=9),
    ], ids=["saturated", "underload", "overload"])
    def test_fifo_engine_reproduces_legacy_serve(self, server, jobs):
        """serve() is a compatibility wrapper for FIFO + no batching."""
        legacy = server.serve(jobs)
        event = simulate(server, jobs)
        legacy_finishes = sorted(r.finish_seconds for r in legacy.results)
        event_finishes = sorted(r.finish_seconds for r in event.results)
        assert event_finishes == pytest.approx(legacy_finishes)
        assert event.makespan_seconds == \
            pytest.approx(legacy.makespan_seconds)

    def test_both_coprocessors_used(self, server):
        report = simulate(server, mult_stream(40))
        assert {r.coprocessor for r in report.results} == {0, 1}

    def test_runtime_is_single_use(self, server):
        runtime = ServingRuntime.for_server(server)
        runtime.run(mult_stream(4))
        with pytest.raises(RuntimeError):
            runtime.run(mult_stream(4))


class TestSchedulerInvariants:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_invariants_on_mixed_poisson(self, server, policy):
        jobs = sorted(
            poisson_stream(400.0, 0.4, seed=3)
            + poisson_stream(500.0, 0.4, kind=JobKind.ADD, seed=4,
                             tenant="adds"),
            key=lambda j: j.arrival_seconds,
        )
        jobs = [Job(index=i, kind=j.kind,
                    arrival_seconds=j.arrival_seconds, tenant=j.tenant)
                for i, j in enumerate(jobs)]
        report = simulate(server, jobs, scheduler=make_scheduler(policy))
        check_invariants(report, jobs)
        assert len(report.rejected) == 0

    @settings(max_examples=15, deadline=None)
    @given(
        policy=st.sampled_from(ALL_POLICIES),
        kinds=st.lists(st.sampled_from([JobKind.MULT, JobKind.ADD]),
                       min_size=1, max_size=30),
        gaps=st.lists(st.floats(0.0, 0.02), min_size=1, max_size=30),
        batch=st.integers(1, 4),
    )
    def test_invariants_property(self, server, policy, kinds, gaps, batch):
        now, jobs = 0.0, []
        for i, kind in enumerate(kinds):
            now += gaps[i % len(gaps)]
            jobs.append(Job(index=i, kind=kind, arrival_seconds=now,
                            tenant=f"t{i % 3}"))
        report = simulate(server, jobs, scheduler=make_scheduler(policy),
                          batching=BatchPolicy(max_jobs=batch))
        check_invariants(report, jobs)


class TestPolicies:
    def test_sjf_runs_adds_before_mults(self, server):
        jobs = [Job(index=i, kind=JobKind.MULT) for i in range(6)] + \
               [Job(index=6 + i, kind=JobKind.ADD) for i in range(6)]
        report = simulate(server, jobs,
                          scheduler=ShortestJobFirstScheduler())
        by_start = sorted(report.results, key=lambda r: r.start_seconds)
        first_kinds = [r.job.kind for r in by_start[:6]]
        assert all(k is JobKind.ADD for k in first_kinds)

    def test_wfq_respects_weights(self, server):
        """A weight-4 tenant's jobs wait far less than a weight-1 peer's."""
        jobs = []
        for i in range(60):
            jobs.append(Job(index=2 * i, kind=JobKind.MULT,
                            tenant="heavy"))
            jobs.append(Job(index=2 * i + 1, kind=JobKind.MULT,
                            tenant="light"))
        tenants = TenantSet.of(Tenant("heavy", weight=4.0),
                               Tenant("light", weight=1.0))
        report = simulate(server, jobs, scheduler=WeightedFairScheduler(),
                          tenants=tenants)
        heavy = report.latency_summary("heavy")
        light = report.latency_summary("light")
        assert heavy.count == light.count == 60
        assert heavy.mean < 0.5 * light.mean

    def test_wfq_explicit_weights_win_over_tenants(self):
        scheduler = WeightedFairScheduler(weights={"a": 9.0})
        ServingRuntime(CostModel(hpca19(), CONFIG), scheduler=scheduler,
                       tenants=TenantSet.of(Tenant("a", weight=1.0)))
        assert scheduler.weights == {"a": 9.0}

    def test_wfq_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            WeightedFairScheduler(weights={"a": 0.0})

    def test_work_stealing_keeps_both_busy(self, server):
        report = simulate(server, mult_stream(80),
                          scheduler=WorkStealingScheduler())
        fifo = simulate(server, mult_stream(80))
        assert report.makespan_seconds == \
            pytest.approx(fifo.makespan_seconds, rel=0.05)
        util = report.utilization()
        assert all(u > 0.9 for u in util)

    def test_work_stealing_rebalances_cost_skew(self, server):
        """Round-robin spray puts all Mults on one queue; stealing must
        keep the other coprocessor from idling."""
        jobs = []
        for i in range(40):
            kind = JobKind.MULT if i % 2 == 0 else JobKind.ADD
            jobs.append(Job(index=i, kind=kind))
        report = simulate(server, jobs,
                          scheduler=WorkStealingScheduler())
        util = report.utilization()
        assert all(u > 0.8 for u in util)


class TestBatching:
    def test_batch_amortizes_arm_setup(self, server):
        batcher = DmaBatcher(server.cost, BatchPolicy(max_jobs=8))
        k = 8
        singles = k * server.cost.job_seconds(JobKind.MULT)
        entries = [
            QueueEntry(job=Job(index=i, kind=JobKind.MULT),
                       cost_seconds=0.0, seq=i) for i in range(k)
        ]
        batched = batcher.service_seconds(entries)
        assert batched < singles
        assert singles - batched == \
            pytest.approx(batcher.setup_savings_seconds(k))

    def test_single_job_batch_matches_table1_cost(self, server):
        batcher = DmaBatcher(server.cost)
        entry = QueueEntry(job=Job(index=0, kind=JobKind.MULT),
                           cost_seconds=0.0, seq=0)
        assert batcher.service_seconds([entry]) == \
            pytest.approx(server.job_seconds(JobKind.MULT))

    def test_batched_runtime_beats_unbatched_on_backlog(self, server):
        # 128 jobs = 16 full trains of 8, 8 per coprocessor: the
        # comparison measures setup amortisation, not packing remainder.
        jobs = mult_stream(128)
        plain = simulate(server, jobs)
        batched = simulate(server, jobs, batching=BatchPolicy(max_jobs=8))
        assert batched.makespan_seconds < plain.makespan_seconds
        assert batched.telemetry.mean_batch_size() > 1.5

    def test_batching_ceiling_above_analytic_throughput(self, server):
        batcher = DmaBatcher(server.cost, BatchPolicy(max_jobs=8))
        assert batcher.saturated_mult_throughput(2, 8) > \
            server.mult_throughput_per_second()

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_jobs=0)

    def test_batching_never_serializes_free_coprocessors(self, server):
        """Two simultaneous jobs on two free coprocessors must run in
        parallel even with an aggressive batch policy."""
        report = simulate(server, mult_stream(2),
                          batching=BatchPolicy(max_jobs=4))
        assert {r.coprocessor for r in report.results} == {0, 1}
        assert report.makespan_seconds == \
            pytest.approx(server.job_seconds(JobKind.MULT))

    def test_network_amortized_upload(self):
        params = hpca19()
        one = network_amortized_upload_seconds(params, 1)
        eight = network_amortized_upload_seconds(params, 8)
        # One request latency for eight payloads, not eight latencies.
        assert eight < 8 * one


class TestTenantsAndAdmission:
    def test_queue_depth_cap_rejects(self, server):
        tenants = TenantSet.of(Tenant("capped", max_queue_depth=4))
        jobs = [Job(index=i, kind=JobKind.MULT, tenant="capped")
                for i in range(30)]
        report = simulate(server, jobs, tenants=tenants)
        assert report.rejected
        assert all(r.reason == "queue-depth" for r in report.rejected)
        check_invariants(report, jobs)

    def test_deadline_admission_rejects_dead_on_arrival(self, server):
        tenants = TenantSet.of(Tenant("tight", sla_seconds=0.02))
        jobs = [Job(index=i, kind=JobKind.MULT, tenant="tight")
                for i in range(40)]
        report = simulate(server, jobs, tenants=tenants)
        reasons = {r.reason for r in report.rejected}
        assert reasons == {"deadline"}
        # Admitted jobs were all completable within the deadline model's
        # optimistic estimate, so violations stay rare.
        assert len(report.results) + len(report.rejected) == 40

    def test_sla_violations_counted(self, server):
        tenants = TenantSet.of(Tenant("strict", sla_seconds=1e-6))
        jobs = [Job(index=0, kind=JobKind.ADD, tenant="strict")]
        report = simulate(server, jobs, tenants=tenants)
        if report.results:
            assert report.telemetry.sla_violations == len(report.results)

    def test_unknown_tenant_gets_defaults(self):
        tenants = TenantSet()
        t = tenants.get("anyone")
        assert t.weight == 1.0
        assert t.sla_seconds is None and t.max_queue_depth is None

    def test_tenant_validation(self):
        with pytest.raises(ValueError):
            Tenant("bad", weight=0.0)
        with pytest.raises(ValueError):
            Tenant("bad", sla_seconds=-1.0)


class TestTelemetry:
    def test_percentiles(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 50) == pytest.approx(50.5)
        assert percentile(values, 99) == pytest.approx(99.01)
        assert percentile([], 50) == 0.0
        with pytest.raises(ValueError):
            percentile(values, 101)

    def test_latency_summary_of_empty(self):
        summary = LatencySummary.of([])
        assert summary.count == 0 and summary.p99 == 0.0

    def test_utilization_saturated(self, server):
        report = simulate(server, mult_stream(60))
        util = report.utilization()
        assert len(util) == CONFIG.num_coprocessors
        assert all(0.95 <= u <= 1.0 for u in util)

    def test_queue_depth_trace_and_mean(self, server):
        report = simulate(server, mult_stream(30))
        telemetry = report.telemetry
        assert telemetry.max_queue_depth >= 1
        assert 0.0 < telemetry.mean_queue_depth() <= \
            telemetry.max_queue_depth


class TestPoissonStreamEdges:
    def test_rate_just_above_zero_yields_no_jobs_in_window(self):
        # Mean inter-arrival 1e6 s >> 1 s duration: empty with near
        # certainty for any seed, and must not loop forever.
        assert poisson_stream(1e-6, 1.0, seed=0) == []

    def test_duration_shorter_than_first_gap(self):
        # With rate 1 job/s a 1 ms window almost surely sees nothing.
        jobs = poisson_stream(1.0, 1e-3, seed=42)
        assert jobs == []

    def test_determinism_across_calls(self):
        a = poisson_stream(200.0, 0.5, seed=7)
        b = poisson_stream(200.0, 0.5, seed=7)
        assert [(j.index, j.arrival_seconds) for j in a] == \
            [(j.index, j.arrival_seconds) for j in b]

    def test_seeds_differ(self):
        a = poisson_stream(200.0, 0.5, seed=1)
        b = poisson_stream(200.0, 0.5, seed=2)
        assert [j.arrival_seconds for j in a] != \
            [j.arrival_seconds for j in b]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            poisson_stream(0.0, 1.0)
        with pytest.raises(ValueError):
            poisson_stream(1.0, 0.0)

    @settings(max_examples=20, deadline=None)
    @given(rate=st.floats(10.0, 1000.0), seed=st.integers(0, 100))
    def test_arrivals_sorted_and_in_window(self, rate, seed):
        jobs = poisson_stream(rate, 0.25, seed=seed)
        times = [j.arrival_seconds for j in jobs]
        assert times == sorted(times)
        assert all(0.0 < t < 0.25 for t in times)
        assert [j.index for j in jobs] == list(range(len(jobs)))


class TestBurstyWorkloads:
    def test_mmpp_deterministic_and_sorted(self):
        a = mmpp_stream(50.0, 800.0, 0.1, 1.0, seed=3)
        b = mmpp_stream(50.0, 800.0, 0.1, 1.0, seed=3)
        assert [j.arrival_seconds for j in a] == \
            [j.arrival_seconds for j in b]
        times = [j.arrival_seconds for j in a]
        assert times == sorted(times)
        assert all(0.0 < t < 1.0 for t in times)

    def test_mmpp_mean_rate_between_states(self):
        jobs = mmpp_stream(50.0, 800.0, 0.2, 20.0, seed=1)
        rate = len(jobs) / 20.0
        assert 50.0 < rate < 800.0

    def test_mmpp_zero_low_rate(self):
        jobs = mmpp_stream(0.0, 400.0, 0.1, 2.0, seed=5)
        assert jobs
        assert all(0.0 < j.arrival_seconds < 2.0 for j in jobs)

    def test_mmpp_tiny_low_rate_still_bursts(self):
        """A quiet-state gap overshooting the horizon must not swallow
        the burst periods behind it (output is continuous in low_rate)."""
        tiny = mmpp_stream(0.01, 1000.0, 0.1, 10.0, seed=0)
        zero = mmpp_stream(0.0, 1000.0, 0.1, 10.0, seed=0)
        assert len(tiny) > 0.5 * len(zero)

    def test_mmpp_burstier_than_poisson(self):
        """Arrival-count variance across bins far exceeds Poisson's."""
        import numpy as np

        def bin_counts(jobs, width=0.1, horizon=30.0):
            counts = np.zeros(int(horizon / width))
            for j in jobs:
                counts[min(int(j.arrival_seconds / width),
                           len(counts) - 1)] += 1
            return counts

        mmpp = bin_counts(mmpp_stream(10.0, 790.0, 0.3, 30.0, seed=2))
        poisson = bin_counts(poisson_stream(float(np.mean(mmpp)) / 0.1,
                                            30.0, seed=2))
        assert np.var(mmpp) > 3 * np.var(poisson)

    def test_mmpp_validation(self):
        with pytest.raises(ValueError):
            mmpp_stream(-1.0, 10.0, 0.1, 1.0)
        with pytest.raises(ValueError):
            mmpp_stream(1.0, 10.0, 0.0, 1.0)

    def test_multi_tenant_stream_tags_and_order(self):
        jobs = multi_tenant_stream({"a": 100.0, "b": 50.0}, 1.0, seed=0)
        assert {j.tenant for j in jobs} == {"a", "b"}
        times = [j.arrival_seconds for j in jobs]
        assert times == sorted(times)
        assert [j.index for j in jobs] == list(range(len(jobs)))
        counts = {t: sum(j.tenant == t for j in jobs) for t in "ab"}
        assert counts["a"] > counts["b"]

    def test_multi_tenant_stream_needs_tenants(self):
        with pytest.raises(ValueError):
            multi_tenant_stream({}, 1.0)


class TestLatencyUnderLoad:
    def test_latency_diverges_past_service_rate(self, server):
        """The queueing signature: p99 explodes once rho > 1."""
        capacity = server.mult_throughput_per_second()
        p99 = {}
        for rho in (0.5, 1.4):
            jobs = poisson_stream(rho * capacity, 1.0, seed=13)
            report = simulate(server, jobs)
            p99[rho] = report.latency_summary().p99
        assert p99[1.4] > 10 * p99[0.5]


class TestClosedLoopClients:
    """The think-time client model (ROADMAP PR 1 follow-up)."""

    def test_population_self_regulates(self, server):
        from repro.system.workloads import ClosedLoopClients

        throughput = {}
        for clients in (2, 64):
            runtime = ServingRuntime.for_server(server)
            result = ClosedLoopClients(clients, 0.05, seed=5).drive(
                runtime, duration_seconds=1.0)
            report = result.report
            # Closed loop: every submitted job completes (no rejection
            # path configured), and nothing is lost.
            assert len(report.results) == result.submitted
            assert result.completed == result.submitted
            assert result.rejected == 0
            throughput[clients] = report.throughput_per_second()
        # More clients -> more throughput, capped by board capacity.
        assert throughput[64] > 2 * throughput[2]
        assert throughput[64] <= server.mult_throughput_per_second() * 1.01

    def test_small_population_tracks_interactive_law(self, server):
        """N clients with think Z and service S complete roughly
        duration * N / (Z + S) jobs while the server is unsaturated."""
        from repro.system.workloads import ClosedLoopClients

        think = 0.05
        clients = 4
        runtime = ServingRuntime.for_server(server)
        result = ClosedLoopClients(clients, think, seed=7).drive(
            runtime, duration_seconds=2.0)
        service = server.job_seconds(JobKind.MULT)
        expected = 2.0 * clients / (think + service)
        assert 0.5 * expected < result.completed < 1.5 * expected

    def test_at_most_one_outstanding_job_per_client(self, server):
        from repro.system.workloads import ClosedLoopClients

        runtime = ServingRuntime.for_server(server)
        result = ClosedLoopClients(3, 0.0, kind=JobKind.ADD, seed=1).drive(
            runtime, duration_seconds=0.2)
        # Zero think time: a client's next arrival is its previous
        # completion; per-client arrivals must be >= one service apart.
        per_client: dict[int, list] = {}
        for r in result.report.results:
            per_client.setdefault(r.job.request, []).append(r)
        assert set(per_client) == {0, 1, 2}
        service = server.job_seconds(JobKind.ADD)
        for results in per_client.values():
            times = sorted(r.job.arrival_seconds for r in results)
            gaps = [b - a for a, b in zip(times, times[1:], strict=False)]
            assert all(gap >= service * 0.999 for gap in gaps)

    def test_validation(self):
        from repro.system.workloads import ClosedLoopClients

        with pytest.raises(ValueError):
            ClosedLoopClients(0, 0.1)
        with pytest.raises(ValueError):
            ClosedLoopClients(1, -0.1)
        with pytest.raises(ValueError):
            ClosedLoopClients(1, 0.1, num_tenants=0)
        with pytest.raises(ValueError):
            ClosedLoopClients(1, 0.1).drive(None, 0.0)
