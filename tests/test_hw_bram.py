"""Tests for the BRAM models and port-conflict detection (Sec. V-A3)."""

import numpy as np
import pytest

from repro.errors import HardwareModelError, MemoryConflictError
from repro.hw.bram import BramBlock, PairedPolyMemory


class TestBramBlock:
    def test_read_write_roundtrip(self):
        block = BramBlock(16)
        block.write(3, (11, 22))
        assert block.read(3) == (11, 22)

    def test_one_read_per_cycle_ok(self):
        block = BramBlock(16)
        block.read(0, cycle=0)
        block.read(1, cycle=1)  # different cycle: fine

    def test_second_read_same_cycle_conflicts(self):
        block = BramBlock(16)
        block.read(0, cycle=5)
        with pytest.raises(MemoryConflictError):
            block.read(1, cycle=5)

    def test_second_write_same_cycle_conflicts(self):
        block = BramBlock(16)
        block.write(0, (1, 2), cycle=5)
        with pytest.raises(MemoryConflictError):
            block.write(1, (3, 4), cycle=5)

    def test_read_and_write_same_cycle_ok(self):
        """One port reads while the other writes (the NTT usage)."""
        block = BramBlock(16)
        block.read(0, cycle=5)
        block.write(1, (1, 2), cycle=5)

    def test_reset_ports_clears_history(self):
        block = BramBlock(16)
        block.read(0, cycle=5)
        block.reset_ports()
        block.read(1, cycle=5)  # no conflict after reset

    def test_address_bounds(self):
        block = BramBlock(16)
        with pytest.raises(HardwareModelError):
            block.read(16)
        with pytest.raises(HardwareModelError):
            block.write(-1, (0, 0))

    def test_bram36k_count(self):
        assert BramBlock(1024).bram36k_count == 2
        assert BramBlock(2048).bram36k_count == 4
        assert BramBlock(512).bram36k_count == 2


class TestPairedPolyMemory:
    def test_paper_geometry(self):
        """n = 4096: 2048 words in two 1024-deep blocks = 4 BRAM36K."""
        memory = PairedPolyMemory(4096)
        assert memory.words == 2048
        assert memory.block_depth == 1024
        assert memory.bram36k_count == 4

    def test_block_routing(self):
        memory = PairedPolyMemory(64)
        block, local = memory.block_of(0)
        assert block is memory.lower and local == 0
        block, local = memory.block_of(memory.block_depth)
        assert block is memory.upper and local == 0

    def test_word_roundtrip(self):
        memory = PairedPolyMemory(64)
        memory.write_word(5, (7, 9))
        memory.write_word(20, (1, 3))
        assert memory.read_word(5) == (7, 9)
        assert memory.read_word(20) == (1, 3)

    def test_cross_block_no_conflict(self):
        """Accesses to different blocks in one cycle are free."""
        memory = PairedPolyMemory(64)
        memory.read_word(0, cycle=0)
        memory.read_word(memory.block_depth, cycle=0)

    def test_same_block_conflict(self):
        memory = PairedPolyMemory(64)
        memory.read_word(0, cycle=0)
        with pytest.raises(MemoryConflictError):
            memory.read_word(1, cycle=0)

    def test_bulk_load_dump(self, rng):
        memory = PairedPolyMemory(64)
        pairs = rng.integers(0, 100, (32, 2))
        memory.load_pairs(pairs)
        assert np.array_equal(memory.dump_pairs(), pairs)

    def test_bulk_load_shape_check(self):
        memory = PairedPolyMemory(64)
        with pytest.raises(HardwareModelError):
            memory.load_pairs(np.zeros((31, 2), dtype=np.int64))

    def test_rejects_tiny_degree(self):
        with pytest.raises(HardwareModelError):
            PairedPolyMemory(4)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(HardwareModelError):
            PairedPolyMemory(100)
