"""Every quantitative claim of the paper's abstract, intro, and
conclusions, as one executable checklist.

Each test quotes the claim it validates. Anything the simulator measures
is held to 10%; model-calibrated quantities (power) to exactness;
qualitative claims to their ordering.
"""

from dataclasses import replace

import pytest

from repro.hw.config import HardwareConfig, slow_coprocessor_config
from repro.hw.power import PowerModel
from repro.hw.resources import ResourceEstimator
from repro.params import hpca19
from repro.system.baseline import SoftwareBaseline
from repro.system.server import CloudServer
from repro.system.workloads import JobKind

CONFIG = HardwareConfig()


@pytest.fixture(scope="module")
def server():
    return CloudServer(hpca19(), CONFIG)


class TestAbstractClaims:
    def test_400_homomorphic_multiplications_per_second(self, server):
        """'our domain specific hardware architecture achieves 400
        homomorphic multiplications per second at 200 MHz FPGA-clock,
        including hardware-software communication overhead'."""
        assert server.mult_throughput_per_second() == \
            pytest.approx(400, rel=0.10)

    def test_over_13x_speedup_vs_i5(self, server):
        """'over 13x speedup with respect to a highly optimized software
        implementation ... on an Intel i5 processor running at 1.8 GHz'."""
        baseline = SoftwareBaseline(hpca19())
        speedup = (baseline.mult_seconds()
                   * server.mult_throughput_per_second())
        assert speedup > 13.0

    def test_200mhz_fpga_clock(self):
        """'At 200 MHz FPGA-clock'."""
        assert CONFIG.fpga_clock_hz == 200_000_000


class TestSectionIIIClaims:
    def test_parameter_set(self):
        """'we set the size of modulus q to 180-bit, the length of
        polynomials to 4096 coefficients, the standard deviation of the
        error distribution to 102 and the width of the larger modulus Q
        to at least 372-bit'."""
        params = hpca19()
        assert params.log2_q == 180
        assert params.n == 4096
        assert params.sigma == 102.0
        assert params.log2_big_q >= 372

    def test_rns_structure(self):
        """'The modulus q is taken as a product of six 30-bit primes ...
        Q is taken as a product of q and additional seven 30-bit
        primes and thus Q is a 390-bit integer'."""
        params = hpca19()
        assert params.k_q == 6 and params.k_p == 7
        assert params.log2_big_q == 390
        assert all(p.bit_length() == 30
                   for p in params.q_primes + params.p_primes)

    def test_depth_4_supported(self):
        """'applications with small multiplicative depth, say up to 4'."""
        from repro.fv.noise_model import NoiseModel

        assert NoiseModel(hpca19()).supported_depth() >= 4


class TestTableIClaims:
    def test_add_in_sw_80x_slower_than_hw(self, server):
        """'Computing the simple Add operation in SW using a single Arm
        core requires 80 times more time than the same computation in
        HW, including the overhead of sending and receiving
        ciphertexts'."""
        assert server.add_speedup_over_sw() == pytest.approx(80, rel=0.15)

    def test_mult_includes_30pct_transfer_overhead(self, server):
        """'The computation time for Mult includes the overhead of
        intermediate data transfers (roughly 30%) during the
        relinearization steps'."""
        streamed = server.mult_compute_seconds()
        pinned = CloudServer(
            hpca19(), replace(CONFIG, relin_key_on_chip=True)
        ).mult_compute_seconds()
        share = 1 - pinned / streamed
        assert 0.15 < share < 0.40

    def test_two_coprocessors_2x_throughput(self):
        """'we place two coprocessors in parallel and achieve 2x
        throughput'."""
        one = CloudServer(hpca19(), replace(CONFIG, num_coprocessors=1))
        two = CloudServer(hpca19(), replace(CONFIG, num_coprocessors=2))
        assert two.mult_throughput_per_second() == pytest.approx(
            2 * one.mult_throughput_per_second()
        )


class TestSectionVIClaims:
    def test_design_is_memory_constrained(self):
        """'It shows that the design is constrained on memory size'."""
        pct = ResourceEstimator(hpca19(),
                                CONFIG).full_design().percentages()
        assert pct["bram36"] == max(pct.values())

    def test_slow_coprocessor_less_than_2x_slower(self):
        """'the time for Mult is less than 2x slower in comparison to
        the faster coprocessor architecture'."""
        fast = CloudServer(hpca19(), CONFIG).mult_compute_seconds()
        slow = CloudServer(
            hpca19(), slow_coprocessor_config()
        ).mult_compute_seconds()
        assert fast < slow < 2 * fast

    def test_power_figures(self):
        """'static power ... 5.3 W ... 2.2 W dynamic ... single core ...
        3.4 W' and 'peak power consumption of 8.7 W'."""
        power = PowerModel(CONFIG)
        assert power.static_watts() == 5.3
        assert power.dynamic_watts(1) == pytest.approx(2.2)
        assert power.dynamic_watts(2) == pytest.approx(3.4)
        assert power.peak_watts() == pytest.approx(8.7)

    def test_faster_than_v100_at_matched_parameters(self, server):
        """'their fastest implementation on Tesla V100 performing 388
        homomorphic multiplications per second is slower than our
        implementation achieving 400 multiplications'."""
        from repro.system.related_work import published_points

        v100 = next(p for p in published_points() if "V100" in p.name)
        assert server.mult_throughput_per_second() > v100.mults_per_second

    def test_faster_than_catapult_yashe(self, server):
        """'Even with a faster SHE scheme and a smaller parameter set,
        their implementation is slower than ours' (Poppelmann et al.)."""
        from repro.system.related_work import published_points

        catapult = next(
            p for p in published_points() if "Poppelmann" in p.name
        )
        ours_ms = server.job_seconds(JobKind.MULT) * 1e3
        assert ours_ms < catapult.mult_ms

    def test_hypothetical_large_fpga_under_100ms(self):
        """'a hypothetical architecture following our design steps would
        be able to compute homomorphic multiplication in less than 0.1
        sec' (the HEPCloud-parameter what-if, Table V row 4)."""
        from repro.hw.scaling import scaling_table

        server = CloudServer(hpca19(), CONFIG)
        base = ResourceEstimator(hpca19(), CONFIG).single_coprocessor()
        points = scaling_table(
            base, server.mult_compute_seconds(),
            server.transfer_in_seconds() + server.transfer_out_seconds(),
        )
        assert points[-1].total_seconds < 0.1


class TestSectionVIIClaims:
    def test_f1_instance_ten_coprocessors(self):
        """'We estimate that each Amazon F1 instance could run at least
        ten coprocessors in parallel' — resource check against a
        VU9P-class device (~5x the ZCU102)."""
        single = ResourceEstimator(hpca19(), CONFIG).single_coprocessor()
        from repro.hw.resources import (
            ZCU102_BRAM36,
            ZCU102_DSPS,
            ZCU102_LUTS,
        )

        f1_luts = 5 * ZCU102_LUTS
        f1_bram = 5 * ZCU102_BRAM36
        f1_dsps = 5 * ZCU102_DSPS
        assert 10 * single.luts <= f1_luts
        # BRAM is the bottleneck: ten instances just about fit in 5x.
        assert 10 * single.bram36 <= f1_bram * 1.05
        assert 10 * single.dsps <= f1_dsps

    def test_design_knobs_trade_cost_for_performance(self):
        """'by using more computation cores we could achieve a lower
        latency or by reducing the number of memories we could lower
        the hardware cost'."""
        from repro.hw.sweeps import sweep_conversion_cores

        points = sweep_conversion_cores(hpca19())
        latencies = [p.mult_seconds for p in points]
        costs = [p.resources.dsps for p in points]
        assert latencies == sorted(latencies, reverse=True)
        assert costs == sorted(costs)
