"""Tests for Galois automorphisms and slot rotations (extension)."""


import numpy as np
import pytest

from repro.errors import ParameterError
from repro.fv.encoder import BatchEncoder
from repro.fv.galois import (
    GaloisEngine,
    apply_galois_rows,
    conjugation_element,
    galois_index_maps,
    rotation_element,
    slot_permutation,
)
from repro.fv.noise import noise_budget_bits
from repro.fv.scheme import FvContext
from repro.params import mini


@pytest.fixture(scope="module")
def galois_context():
    return FvContext(mini(t=65537), seed=71)


@pytest.fixture(scope="module")
def galois_keys(galois_context):
    return galois_context.keygen()


@pytest.fixture(scope="module")
def engine(galois_context):
    return GaloisEngine(galois_context)


@pytest.fixture(scope="module")
def encoder(galois_context):
    return BatchEncoder(galois_context.params)


class TestAutomorphismMath:
    def test_index_maps_are_permutations(self):
        for g in (3, 5, 9, 127):
            dest, sign = galois_index_maps(256, g)
            assert sorted(dest.tolist()) == list(range(256))
            assert set(np.unique(sign)) <= {-1, 1}

    def test_identity_element(self):
        dest, sign = galois_index_maps(64, 1)
        assert np.array_equal(dest, np.arange(64))
        assert np.all(sign == 1)

    def test_rejects_even_element(self):
        with pytest.raises(ParameterError):
            galois_index_maps(64, 2)

    def test_matches_polynomial_substitution(self, rng):
        """tau_g(a) computed by index maps equals a(x^g) mod (x^n+1)."""
        n, modulus = 16, 97
        g = 3
        coeffs = [int(c) for c in rng.integers(0, modulus, n)]
        # Substitute x -> x^g the slow exact way.
        expected = [0] * n
        for i, c in enumerate(coeffs):
            raw = (i * g) % (2 * n)
            if raw < n:
                expected[raw] = (expected[raw] + c) % modulus
            else:
                expected[raw - n] = (expected[raw - n] - c) % modulus
        rows = np.array([coeffs], dtype=np.int64)
        out = apply_galois_rows(rows, np.array([[modulus]]), n, g)
        assert out[0].tolist() == expected

    def test_automorphism_is_multiplicative(self, rng):
        """tau_g(a*b) == tau_g(a) * tau_g(b) — it is a ring map."""
        from repro.nttmath.ntt import negacyclic_convolution

        n, modulus, g = 16, 97, 5
        a = [int(c) for c in rng.integers(0, modulus, n)]
        b = [int(c) for c in rng.integers(0, modulus, n)]
        product = negacyclic_convolution(a, b, modulus)
        mod_col = np.array([[modulus]])
        tau_ab = apply_galois_rows(
            np.array([product]), mod_col, n, g
        )[0].tolist()
        tau_a = apply_galois_rows(np.array([a]), mod_col, n, g)[0].tolist()
        tau_b = apply_galois_rows(np.array([b]), mod_col, n, g)[0].tolist()
        assert tau_ab == negacyclic_convolution(tau_a, tau_b, modulus)

    def test_slot_permutation_is_permutation(self):
        for g in (3, 9, conjugation_element(256)):
            perm = slot_permutation(256, g)
            assert sorted(perm.tolist()) == list(range(256))

    def test_rotation_elements_form_group(self):
        n = 256
        assert rotation_element(0, n) == 1
        composed = (rotation_element(1, n) * rotation_element(2, n)) \
            % (2 * n)
        assert composed == rotation_element(3, n)


class TestHomomorphicRotation:
    def test_rotation_matches_plaintext_permutation(self, galois_context,
                                                    galois_keys, engine,
                                                    encoder, rng):
        params = galois_context.params
        values = rng.integers(0, params.t, params.n)
        ct = galois_context.encrypt(encoder.encode(values),
                                    galois_keys.public)
        g = rotation_element(1, params.n)
        key = engine.keygen(galois_keys.secret, g)
        rotated = engine.apply(ct, key)
        decoded = encoder.decode(
            galois_context.decrypt(rotated, galois_keys.secret)
        )
        assert np.array_equal(decoded,
                              values[slot_permutation(params.n, g)])

    def test_rotation_composes(self, galois_context, galois_keys, engine,
                               encoder, rng):
        params = galois_context.params
        values = rng.integers(0, params.t, params.n)
        ct = galois_context.encrypt(encoder.encode(values),
                                    galois_keys.public)
        k1 = engine.keygen(galois_keys.secret,
                           rotation_element(1, params.n))
        k3 = engine.keygen(galois_keys.secret,
                           rotation_element(3, params.n))
        thrice = engine.apply(engine.apply(engine.apply(ct, k1), k1), k1)
        direct = engine.apply(ct, k3)
        d1 = encoder.decode(
            galois_context.decrypt(thrice, galois_keys.secret)
        )
        d2 = encoder.decode(
            galois_context.decrypt(direct, galois_keys.secret)
        )
        assert np.array_equal(d1, d2)

    def test_conjugation_is_involution(self, galois_context, galois_keys,
                                       engine, encoder, rng):
        params = galois_context.params
        values = rng.integers(0, params.t, params.n)
        ct = galois_context.encrypt(encoder.encode(values),
                                    galois_keys.public)
        key = engine.keygen(galois_keys.secret,
                            conjugation_element(params.n))
        back = engine.apply(engine.apply(ct, key), key)
        decoded = encoder.decode(
            galois_context.decrypt(back, galois_keys.secret)
        )
        assert np.array_equal(decoded, values)

    def test_sum_all_slots(self, galois_context, galois_keys, engine,
                           encoder, rng):
        params = galois_context.params
        values = rng.integers(0, 1000, params.n)
        ct = galois_context.encrypt(encoder.encode(values),
                                    galois_keys.public)
        keys = engine.summation_keygen(galois_keys.secret)
        total = engine.sum_all_slots(ct, keys)
        decoded = encoder.decode(
            galois_context.decrypt(total, galois_keys.secret)
        )
        expected = int(values.sum() % params.t)
        assert np.all(decoded == expected)

    def test_rotation_noise_cheaper_than_mult(self, galois_context,
                                              galois_keys, engine, encoder,
                                              rng):
        """A rotation costs only the additive key-switch noise floor
        (~k*n*2^30*sigma), cheaper than a multiplication and — unlike a
        Mult — not compounding: two rotations cost barely more than one."""
        from repro.fv.evaluator import Evaluator

        params = galois_context.params
        values = rng.integers(0, params.t, params.n)
        ct = galois_context.encrypt(encoder.encode(values),
                                    galois_keys.public)
        before = noise_budget_bits(galois_context, ct, galois_keys.secret)
        key = engine.keygen(galois_keys.secret,
                            rotation_element(1, params.n))
        rotated_once = engine.apply(ct, key)
        rotated_twice = engine.apply(rotated_once, key)
        after_one = noise_budget_bits(galois_context, rotated_once,
                                      galois_keys.secret)
        after_two = noise_budget_bits(galois_context, rotated_twice,
                                      galois_keys.secret)
        mult = Evaluator(galois_context).multiply(ct, ct,
                                                  galois_keys.relin)
        after_mult = noise_budget_bits(galois_context, mult,
                                       galois_keys.secret)
        assert after_one > 0
        assert before - after_one < before - after_mult
        # Additive floor: the second rotation is nearly free.
        assert after_one - after_two < 3

    def test_requires_two_part_ciphertext(self, galois_context,
                                          galois_keys, engine, encoder):
        from repro.fv.evaluator import Evaluator

        params = galois_context.params
        ct = galois_context.encrypt(
            encoder.encode(np.ones(8, dtype=np.int64)),
            galois_keys.public,
        )
        raw = Evaluator(galois_context).multiply_raw(ct, ct)
        key = engine.keygen(galois_keys.secret,
                            rotation_element(1, params.n))
        with pytest.raises(ParameterError):
            engine.apply(raw, key)

    def test_missing_rotation_key(self, galois_context, galois_keys,
                                  engine, encoder):
        ct = galois_context.encrypt(
            encoder.encode(np.ones(4, dtype=np.int64)),
            galois_keys.public,
        )
        with pytest.raises(ParameterError):
            engine.rotate(ct, 5, {})


class TestRotationOnCoprocessor:
    """The extension claim: rotations run on the paper's ISA unchanged."""

    @pytest.fixture(scope="class")
    def rotation_setup(self, galois_context, galois_keys, engine, encoder):
        rng = np.random.default_rng(12)
        params = galois_context.params
        values = rng.integers(0, params.t, params.n)
        ct = galois_context.encrypt(encoder.encode(values),
                                    galois_keys.public)
        g = rotation_element(1, params.n)
        key = engine.keygen(galois_keys.secret, g)
        return values, ct, key

    def test_hw_rotation_bit_exact(self, galois_context, engine,
                                   rotation_setup):
        from repro.hw.coprocessor import Coprocessor

        values, ct, key = rotation_setup
        sw = engine.apply(ct, key)
        hw, report = Coprocessor(galois_context.params).rotate(ct, key)
        assert np.array_equal(hw.c0.residues, sw.c0.residues)
        assert np.array_equal(hw.c1.residues, sw.c1.residues)
        assert report.total_cycles > 0

    def test_hw_rotation_decodes_to_permutation(self, galois_context,
                                                galois_keys, encoder,
                                                rotation_setup):
        from repro.hw.coprocessor import Coprocessor

        values, ct, key = rotation_setup
        hw, _ = Coprocessor(galois_context.params).rotate(ct, key)
        decoded = encoder.decode(
            galois_context.decrypt(hw, galois_keys.secret)
        )
        perm = slot_permutation(galois_context.params.n, key.element)
        assert np.array_equal(decoded, values[perm])

    def test_rotation_cheaper_than_mult(self, galois_context, galois_keys,
                                        rotation_setup):
        from repro.fv.evaluator import Evaluator
        from repro.hw.coprocessor import Coprocessor

        values, ct, key = rotation_setup
        coprocessor = Coprocessor(galois_context.params)
        _, rotation_report = coprocessor.rotate(ct, key)
        _, mult_report = coprocessor.mult(ct, ct, galois_keys.relin)
        assert rotation_report.total_cycles < mult_report.total_cycles

    def test_rotation_program_census(self, galois_context):
        """2 GALOIS + k_q (DIGIT, NTT, 2 CMUL) + 2 INTT + final adds."""
        from repro.hw.compiler import compile_rotation
        from repro.hw.config import HardwareConfig
        from repro.hw.isa import Opcode

        params = galois_context.params
        program = compile_rotation(params, HardwareConfig(), 3)
        histogram = program.opcode_histogram()
        assert histogram[Opcode.GALOIS] == 2
        assert histogram[Opcode.NTT] == params.k_q
        assert histogram[Opcode.INTT] == 2
        assert histogram[Opcode.CMUL] == 2 * params.k_q
