"""Fault injection across the serving stack (repro.faults + cluster).

The contract under test is ISSUE 9's: failure is deterministic, loud,
and survivable. Concretely:

* a :class:`FaultPlan` is a pure function of its seed — two clusters
  replaying one plan produce *equal* :class:`FailureReport`s
  (property-tested over seeds);
* a board crash spills every queued and in-flight job back to the
  cluster edge, and with retries + R=2 replication **no accepted job
  is lost** — every offered job still lands in exactly one result or
  rejection (conservation);
* the engine honours deadlines ("timeout" rejections), DMA stalls
  multiply service times, retried jobs measure latency from their
  first arrival, and routers never place new work on a DOWN board;
* tenant failover to a replica pays a priced key-rehydration penalty
  and the fault ledger (plus the obs counters) records all of it.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    FpgaCluster,
    LeastOutstandingWorkRouter,
    ReplicatedPlacement,
    RoundRobinRouter,
    ShardState,
    TenantAffinityRouter,
)
from repro.faults import FailureReport, FaultEvent, FaultKind, FaultPlan, \
    RetryPolicy
from repro.obs import Tracer, current_registry
from repro.params import mini
from repro.serve import ServingRuntime
from repro.system.server import CostModel
from repro.system.workloads import Job, JobKind, cluster_trace, mult_stream
from test_cluster import check_cluster_conservation

PARAMS = mini()
COST = CostModel(PARAMS)


def _jobs(count: int, spacing: float = 0.0, **kwargs) -> list[Job]:
    return [Job(index=i, kind=JobKind.MULT, arrival_seconds=i * spacing,
                **kwargs) for i in range(count)]


class TestFaultPlan:
    def test_seeded_plan_is_deterministic(self):
        a = FaultPlan.seeded(7, 8, 1.0, crashes=2, transient_failures=5,
                             dma_stalls=3)
        b = FaultPlan.seeded(7, 8, 1.0, crashes=2, transient_failures=5,
                             dma_stalls=3)
        assert a == b and a.events == b.events

    def test_different_seeds_differ(self):
        a = FaultPlan.seeded(1, 8, 1.0, crashes=2, transient_failures=4)
        b = FaultPlan.seeded(2, 8, 1.0, crashes=2, transient_failures=4)
        assert a != b

    def test_events_are_time_sorted(self):
        plan = FaultPlan.seeded(3, 6, 2.0, crashes=2,
                                transient_failures=10, dma_stalls=4)
        times = [e.time_seconds for e in plan]
        assert times == sorted(times)

    def test_refuses_to_kill_every_board(self):
        with pytest.raises(ValueError, match="at least one board"):
            FaultPlan.seeded(0, 4, 1.0, crashes=4)

    def test_rejects_unsorted_events(self):
        events = (FaultEvent(0.5, FaultKind.SHARD_CRASH, 0),
                  FaultEvent(0.1, FaultKind.SHARD_RECOVER, 0))
        with pytest.raises(ValueError, match="time-sorted"):
            FaultPlan(events=events)

    def test_event_validation(self):
        with pytest.raises(ValueError, match="predate"):
            FaultEvent(-1.0, FaultKind.SHARD_CRASH, 0)
        with pytest.raises(ValueError, match="speed the board up"):
            FaultEvent(0.0, FaultKind.DMA_STALL, 0, factor=0.5)

    def test_board_kill_requires_recovery_after_crash(self):
        with pytest.raises(ValueError, match="follow the crash"):
            FaultPlan.board_kill(0, 0.5, recover_at=0.2)
        plan = FaultPlan.board_kill(1, 0.5, recover_at=0.9)
        assert [e.kind for e in plan] == [FaultKind.SHARD_CRASH,
                                         FaultKind.SHARD_RECOVER]
        assert FaultPlan.none().events == ()


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(base_backoff_seconds=0.01, multiplier=2.0,
                             jitter=0.0)
        assert policy.backoff_seconds(1) == pytest.approx(0.01)
        assert policy.backoff_seconds(3) == pytest.approx(0.04)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_backoff_seconds=0.01, jitter=0.25,
                             seed=5)
        draws = {policy.backoff_seconds(2, token=t) for t in range(8)}
        assert len(draws) > 1  # distinct tokens fan out
        for delay in draws:
            assert 0.015 <= delay <= 0.025
        assert policy.backoff_seconds(2, token=3) == \
            policy.backoff_seconds(2, token=3)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_seconds(0)


class TestEngineFailureSemantics:
    def test_service_scale_slows_completions(self):
        nominal = ServingRuntime(COST).run(mult_stream(8))
        stalled = ServingRuntime(COST)
        stalled.service_scale = 4.0
        slow = stalled.run(mult_stream(8))
        assert slow.makespan_seconds == \
            pytest.approx(4.0 * nominal.makespan_seconds)

    def test_service_scale_validation(self):
        runtime = ServingRuntime(COST)
        with pytest.raises(ValueError):
            runtime.service_scale = 0.5

    def test_deadline_expiry_rejects_with_timeout(self):
        # A saturating burst: late queue entries blow their deadlines.
        deadline = 2.5 * COST.job_seconds(JobKind.MULT)
        jobs = [replace(j, deadline_seconds=deadline)
                for j in mult_stream(40)]
        report = ServingRuntime(COST).run(jobs)
        timeouts = [r for r in report.rejected if r.reason == "timeout"]
        assert timeouts, "no deadline ever fired under saturation"
        assert len(report.results) + len(report.rejected) == len(jobs)
        for result in report.results:
            assert result.start_seconds <= deadline

    def test_spill_returns_all_outstanding_work(self):
        runtime = ServingRuntime(COST)
        runtime.begin()
        for job in _jobs(12):
            runtime.inject(job)
        # Process the arrivals and first dispatches, then crash.
        step = COST.job_seconds(JobKind.MULT) / 2
        runtime.advance_to(step)
        spilled = runtime.spill()
        assert sorted(j.index for j in spilled) + \
            [r.job.index for r in runtime.drain().results] == \
            sorted(range(12))
        assert runtime.outstanding_jobs() == 0

    def test_spilled_runtime_accepts_new_work(self):
        runtime = ServingRuntime(COST)
        runtime.begin()
        for job in _jobs(4):
            runtime.inject(job)
        runtime.spill()
        late = Job(index=99, kind=JobKind.MULT,
                   arrival_seconds=runtime.now)
        runtime.inject(late)
        report = runtime.drain()
        assert [r.job.index for r in report.results] == [99]

    def test_fail_one_pops_next_queued_job(self):
        runtime = ServingRuntime(COST)
        runtime.begin()
        for job in _jobs(6):
            runtime.inject(job)
        runtime.advance_to(0.0)
        before = runtime.outstanding_jobs()
        failed = runtime.fail_one()
        assert failed is not None
        assert runtime.outstanding_jobs() == before - 1
        assert runtime.fail_one() is not None  # still more queued

    def test_retry_latency_measured_from_first_arrival(self):
        job = Job(index=0, kind=JobKind.MULT, arrival_seconds=0.5,
                  first_arrival_seconds=0.1)
        runtime = ServingRuntime(COST)
        runtime.begin()
        runtime.advance_to(0.5, inclusive=False)
        runtime.inject(job)
        report = runtime.drain()
        (latency,) = report.telemetry.latencies
        finish = report.results[0].finish_seconds
        assert latency == pytest.approx(finish - 0.1)


class TestShardLifecycle:
    def _shard(self, name="s0"):
        from repro.cluster import Shard

        return Shard(name, COST)

    def test_crash_spills_and_refuses_work(self):
        shard = self._shard()
        shard.begin()
        for job in _jobs(5):
            shard.inject(job)
        spilled = shard.crash(0.0)
        assert len(spilled) == 5
        assert shard.state is ShardState.DOWN
        assert not shard.accepting(Job(index=9, kind=JobKind.MULT))
        assert shard.crash(0.0) == []  # idempotent

    def test_recover_returns_to_service(self):
        shard = self._shard()
        shard.begin()
        shard.crash(0.0)
        shard.set_service_scale = shard.set_service_scale  # no-op alias
        shard.recover()
        assert shard.state is ShardState.UP
        assert shard.down_since is None
        assert shard.accepting(Job(index=0, kind=JobKind.MULT))
        assert shard.runtime.service_scale == 1.0

    def test_draining_refuses_new_but_finishes_queued(self):
        shard = self._shard()
        shard.begin()
        for job in _jobs(4):
            shard.inject(job)
        shard.start_draining()
        assert shard.state is ShardState.DRAINING
        assert not shard.accepting(Job(index=9, kind=JobKind.MULT))
        report = shard.drain()
        assert len(report.results) == 4


class TestReplicatedPlacement:
    def test_replica_set_matches_rendezvous_order(self):
        names = [f"shard{i}" for i in range(8)]
        placement = ReplicatedPlacement(names, replicas=3)
        router = TenantAffinityRouter()

        class _FakeShard:
            def __init__(self, name):
                self.name = name

        shards = [_FakeShard(n) for n in names]
        for tenant in ("t0", "t1", "hot"):
            assert placement.preference(tenant) == \
                router.preference_order(tenant, shards)
            assert placement.replica_set(tenant) == \
                placement.preference(tenant)[:3]
            assert placement.primary(tenant) == \
                placement.preference(tenant)[0]

    def test_warmth_seeds_evicts_and_rehydrates(self):
        placement = ReplicatedPlacement(["a", "b", "c", "d"], replicas=2)
        first, second = placement.replica_set("t")
        assert placement.is_warm("t", first)
        assert placement.is_warm("t", second)
        placement.evict_shard(first)
        assert not placement.is_warm("t", first)
        assert placement.is_warm("t", second)
        placement.warm("t", first)
        assert placement.is_warm("t", first)

    def test_primary_tenants_tracks_seen_population(self):
        placement = ReplicatedPlacement(["a", "b", "c"], replicas=1)
        tenants = [f"t{i}" for i in range(20)]
        for tenant in tenants:
            placement.is_warm(tenant, 0)  # first sight
        by_primary = [placement.primary_tenants(i) for i in range(3)]
        assert sorted(t for group in by_primary for t in group) == \
            sorted(tenants)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicatedPlacement(["a", "b"], replicas=3)
        with pytest.raises(ValueError):
            ReplicatedPlacement(["a", "b"], replicas=0)


def _chaos_run(plan, *, shards=4, replicas=2, router=None, retry=None,
               duration=0.06, rate=5000.0, tenants=8, seed=3):
    jobs = cluster_trace(tenants, rate, duration, seed=seed)
    cluster = FpgaCluster.homogeneous(
        PARAMS, shards, router=router or TenantAffinityRouter(),
        fault_plan=plan, retry=retry, replicas=replicas)
    return cluster.run(jobs), jobs


class TestClusterFaults:
    def test_board_kill_loses_nothing(self):
        # Aim a 3x-oversubscribed tenant burst at shard1's primary
        # tenant so the board is guaranteed busy when the kill lands.
        names = [f"shard{i}" for i in range(4)]
        placement = ReplicatedPlacement(names, replicas=2)
        tenant = next(t for t in (f"hot{i}" for i in range(64))
                      if placement.primary(t) == 1)
        jobs = [Job(index=i, kind=JobKind.MULT,
                    arrival_seconds=i * 0.0002, tenant=tenant)
                for i in range(120)]
        plan = FaultPlan.board_kill(1, 0.012, recover_at=0.03)
        cluster = FpgaCluster.homogeneous(
            PARAMS, 4, router=TenantAffinityRouter(),
            fault_plan=plan, replicas=2)
        report = cluster.run(jobs)
        check_cluster_conservation(report, jobs)
        failure = report.failure
        assert failure is not None
        assert failure.crashes == 1 and failure.recoveries == 1
        assert failure.jobs_lost == 0
        assert failure.jobs_retried >= failure.jobs_spilled > 0
        assert report.availability == 1.0
        assert failure.downtime_by_shard["shard1"] == \
            pytest.approx(0.018)

    def test_no_new_work_lands_on_a_down_board(self):
        plan = FaultPlan.board_kill(0, 0.02)  # never recovers
        report, jobs = _chaos_run(plan, router=RoundRobinRouter(),
                                  replicas=None)
        check_cluster_conservation(report, jobs)
        dead = report.shard_reports[0]
        # Every result on the dead board started before the kill —
        # the health mask kept all later arrivals off it.
        assert all(r.start_seconds < 0.02 for r in dead.results)
        assert report.failure.downtime_by_shard["shard0"] > 0.0

    def test_unrecovered_kill_with_replication_still_serves(self):
        # Kill the hot tenant's primary *and* its warm replica: traffic
        # must fail over to a cold third board, paying key rehydration.
        names = [f"shard{i}" for i in range(4)]
        placement = ReplicatedPlacement(names, replicas=2)
        tenant = "t42"
        primary, replica = placement.preference(tenant)[:2]
        events = (
            FaultEvent(0.010, FaultKind.SHARD_CRASH, primary),
            FaultEvent(0.011, FaultKind.SHARD_CRASH, replica),
        )
        jobs = [Job(index=i, kind=JobKind.MULT,
                    arrival_seconds=i * 0.0004, tenant=tenant)
                for i in range(100)]
        cluster = FpgaCluster.homogeneous(
            PARAMS, 4, router=TenantAffinityRouter(),
            fault_plan=FaultPlan(events=events), replicas=2)
        report = cluster.run(jobs)
        check_cluster_conservation(report, jobs)
        assert report.failure.jobs_lost == 0
        assert report.availability == 1.0
        assert report.failure.failovers > 0
        assert report.failure.rehydrations > 0
        assert report.failure.failovers_by_tenant == \
            {tenant: report.failure.failovers}

    def test_retry_budget_exhaustion_is_counted_loss(self):
        names = [f"shard{i}" for i in range(4)]
        placement = ReplicatedPlacement(names, replicas=2)
        tenant = next(t for t in (f"hot{i}" for i in range(64))
                      if placement.primary(t) == 1)
        jobs = [Job(index=i, kind=JobKind.MULT,
                    arrival_seconds=i * 0.0002, tenant=tenant)
                for i in range(120)]
        plan = FaultPlan.board_kill(1, 0.012)
        retry = RetryPolicy(max_attempts=1)  # no second chances
        cluster = FpgaCluster.homogeneous(
            PARAMS, 4, router=TenantAffinityRouter(),
            fault_plan=plan, retry=retry, replicas=2)
        report = cluster.run(jobs)
        check_cluster_conservation(report, jobs)
        failure = report.failure
        assert failure.jobs_lost == failure.jobs_spilled > 0
        assert failure.jobs_retried == 0
        lost = [r for r in report.rejected if r.reason == "retry-budget"]
        assert len(lost) == failure.jobs_lost

    def test_transient_job_failures_retry_in_place(self):
        events = tuple(FaultEvent(t, FaultKind.JOB_FAIL, 0)
                       for t in (0.005, 0.01, 0.015))
        plan = FaultPlan(events=events)
        report, jobs = _chaos_run(plan, shards=1, replicas=None,
                                  router=RoundRobinRouter(), rate=4000.0)
        check_cluster_conservation(report, jobs)
        assert report.failure.transient_failures > 0
        assert report.failure.jobs_lost == 0

    def test_dma_stall_inflates_latency_until_resume(self):
        stall = FaultPlan(events=(
            FaultEvent(0.0, FaultKind.DMA_STALL, 0, factor=8.0),))
        slow, jobs = _chaos_run(stall, shards=1, replicas=None,
                                rate=1500.0)
        clear, _ = _chaos_run(FaultPlan.none(), shards=1, replicas=None,
                              rate=1500.0)
        assert slow.failure.dma_stalls == 1
        assert slow.latency_summary().p99 > 2.0 * \
            clear.latency_summary().p99
        check_cluster_conservation(slow, jobs)

    def test_fault_counters_and_spans_emitted(self):
        plan = FaultPlan.board_kill(1, 0.02, recover_at=0.04)
        tracer = Tracer()
        with tracer.activate():
            report, _ = _chaos_run(plan)
        registry = current_registry()
        assert registry.value("fault_events_total",
                              kind="shard_crash") == 1.0
        assert registry.value("fault_events_total",
                              kind="shard_recover") == 1.0
        assert registry.value("fault_retries_total") == \
            report.failure.jobs_retried
        spans = [s for s in tracer.finish().walk() if s.kind == "fault"]
        names = {s.name for s in spans}
        assert "fault.shard_crash" in names
        down = [s for s in spans if s.name == "shard.down"]
        assert down and down[0].attrs["shard"] == "shard1"
        assert down[0].end - down[0].start == pytest.approx(0.02)

    def test_fault_free_cluster_has_no_failure_report(self):
        cluster = FpgaCluster.homogeneous(PARAMS, 2)
        report = cluster.run(mult_stream(16))
        assert report.failure is None

    def test_replicas_validated_against_fleet_size(self):
        with pytest.raises(ValueError, match="replication factor"):
            FpgaCluster.homogeneous(PARAMS, 2, replicas=3)

    def test_plan_validated_against_fleet_size(self):
        plan = FaultPlan.board_kill(5, 0.1)
        with pytest.raises(ValueError, match="names shard 5"):
            FpgaCluster.homogeneous(PARAMS, 2, fault_plan=plan)

    def test_closed_loop_driver_steps_over_faults(self):
        from repro.system.workloads import ClosedLoopClients

        plan = FaultPlan.board_kill(0, 0.01, recover_at=0.03)
        cluster = FpgaCluster.homogeneous(
            PARAMS, 2, router=LeastOutstandingWorkRouter(),
            fault_plan=plan, replicas=2)
        result = ClosedLoopClients(8, 0.002, num_tenants=4,
                                   seed=1).drive(cluster, 0.05)
        assert result.report.failure.crashes == 1
        assert result.report.failure.jobs_lost == 0
        assert result.report.completed > 0


class TestDeterminism:
    """Two runs of one seeded plan produce identical FailureReports."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_seeded_chaos_is_reproducible(self, seed):
        def run():
            plan = FaultPlan.seeded(seed, 4, 0.04, crashes=1,
                                    transient_failures=3, dma_stalls=1)
            jobs = cluster_trace(6, 2500.0, 0.04, seed=seed)
            cluster = FpgaCluster.homogeneous(
                PARAMS, 4, router=TenantAffinityRouter(),
                fault_plan=plan, replicas=2,
                retry=RetryPolicy(seed=seed))
            return cluster.run(jobs)

        first, second = run(), run()
        assert isinstance(first.failure, FailureReport)
        assert first.failure == second.failure
        assert [r.finish_seconds for r in first.results] == \
            [r.finish_seconds for r in second.results]


class TestSimulatedBackendFaults:
    def test_program_survives_board_kill(self):
        from repro.api import Session, SimulatedBackend, sum_slots

        session = Session(mini(t=65537), seed=61)
        a = session.encrypt([1, 2, 3, 4])
        b = session.encrypt([5, 6, 7, 8])
        program = session.compile(sum_slots(a * b), name="dot")
        plan = FaultPlan.board_kill(1, 0.001, recover_at=0.004)
        backend = SimulatedBackend.over_cluster(
            session.params, 3, router_factory=TenantAffinityRouter,
            fault_plan=plan, replicas=2)
        run = backend.run(program, requests=40, rate_per_second=2000.0,
                          num_tenants=8, seed=2)
        assert run.failure_report is not None
        assert run.failure_report.crashes == 1
        assert run.failure_report.jobs_lost == 0
        assert all(f.succeeded for f in run.futures)

    def test_runtime_backend_has_no_failure_report(self):
        from repro.api import Session, SimulatedBackend, sum_slots

        session = Session(mini(t=65537), seed=62)
        a = session.encrypt([1, 2, 3, 4])
        program = session.compile(sum_slots(a * a), name="sq")
        backend = SimulatedBackend.over_runtime(session.params)
        assert backend.run(program, requests=2).failure_report is None


class TestChaosCli:
    def test_cluster_faults_flag_prints_failure_table(self, capsys):
        from repro.cli import main

        assert main(["cluster", "--shards", "2", "--faults", "5",
                     "--replicas", "2", "--duration", "0.05",
                     "--tenants", "12"]) == 0
        out = capsys.readouterr().out
        assert "Failure report (plan seed: 5)" in out
        assert "jobs lost" in out
        assert "availability" in out
