"""Tests for the system layer: Arm model, software baseline, server,
workloads, and the Sec. VI-E comparison data."""

import pytest

from repro.hw.config import HardwareConfig
from repro.hw.power import PowerModel
from repro.params import hpca19, mini
from repro.system.arm import ArmCoreModel
from repro.system.baseline import (
    SoftwareBaseline,
    count_add_operations,
    count_mult_operations,
    ntt_operations,
)
from repro.system.related_work import (
    our_point,
    published_points,
)
from repro.system.server import CloudServer
from repro.system.workloads import (
    JobKind,
    add_stream,
    mixed_workload,
    mult_stream,
)

CONFIG = HardwareConfig()


@pytest.fixture(scope="module")
def server():
    return CloudServer(hpca19(), CONFIG)


class TestArmModel:
    def test_add_in_sw_matches_table1(self):
        """Table I: Add in SW = 54,680,467 Arm cycles = 45.567 ms."""
        arm = ArmCoreModel(CONFIG)
        cycles = arm.add_in_sw_cycles(hpca19())
        assert abs(cycles - 54_680_467) / 54_680_467 < 0.01
        assert abs(arm.add_in_sw_seconds(hpca19()) - 45.567e-3) < 1e-3

    def test_mult_in_sw_is_hopeless(self):
        """Arm software Mult would take far longer than the FPGA's 4.5 ms."""
        arm = ArmCoreModel(CONFIG)
        assert arm.mult_in_sw_seconds(hpca19()) > 1.0


class TestSoftwareBaseline:
    def test_mult_matches_nfllib(self):
        """Sec. VI-E: 33 ms per Mult on the i5 (calibration target)."""
        baseline = SoftwareBaseline(hpca19())
        assert abs(baseline.mult_seconds() - 33e-3) / 33e-3 < 0.02

    def test_add_matches_nfllib(self):
        """Sec. VI-E: 0.1 ms per Add on the i5."""
        baseline = SoftwareBaseline(hpca19())
        assert abs(baseline.add_seconds() - 0.1e-3) / 0.1e-3 < 0.05

    def test_op_counts_scale_with_parameters(self):
        big = count_mult_operations(hpca19())
        small = count_mult_operations(mini())
        assert big.modmuls > 4 * small.modmuls

    def test_ntt_op_count(self):
        ops = ntt_operations(4096)
        assert ops.modmuls == 2048 * 12

    def test_add_op_count(self):
        ops = count_add_operations(hpca19())
        assert ops.modmuls == 0
        assert ops.modadds == 2 * 6 * 4096

    def test_mults_per_second(self):
        baseline = SoftwareBaseline(hpca19())
        assert 28 < baseline.mults_per_second() < 33


class TestCloudServer:
    def test_mult_compute_time_near_paper(self, server):
        assert abs(server.mult_compute_seconds() - 4.458e-3) / 4.458e-3 \
            < 0.10

    def test_throughput_near_400(self, server):
        """The paper's headline: 400 Mult/s with two coprocessors."""
        throughput = server.mult_throughput_per_second()
        assert abs(throughput - 400) / 400 < 0.10

    def test_two_coprocessors_double_throughput(self):
        one = CloudServer(hpca19(),
                          HardwareConfig(num_coprocessors=1))
        two = CloudServer(hpca19(),
                          HardwareConfig(num_coprocessors=2))
        ratio = (two.mult_throughput_per_second()
                 / one.mult_throughput_per_second())
        assert ratio == pytest.approx(2.0)

    def test_add_speedup_near_80x(self, server):
        """Table I discussion: HW Add is ~80x the Arm-software Add."""
        assert abs(server.add_speedup_over_sw() - 80) / 80 < 0.15

    def test_serve_keeps_both_coprocessors_busy(self, server):
        report = server.serve(mult_stream(40))
        used = {r.coprocessor for r in report.results}
        assert used == {0, 1}

    def test_serve_parallel_speedup(self, server):
        """Paper: 'two Mult operations take roughly the same time as one'."""
        report = server.serve(mult_stream(2))
        one_job = server.job_seconds(JobKind.MULT)
        assert report.makespan_seconds == pytest.approx(one_job)

    def test_serve_throughput_matches_analytic(self, server):
        report = server.serve(mult_stream(100))
        analytic = server.mult_throughput_per_second()
        assert abs(report.throughput_per_second() - analytic) / analytic \
            < 0.05

    def test_mixed_workload_runs(self, server):
        report = server.serve(mixed_workload(5, 10, seed=3))
        assert len(report.results) == 55
        assert report.throughput_per_second(JobKind.MULT) > 0

    def test_headline_13x_speedup(self, server):
        """Abstract: >13x over the i5 software implementation."""
        baseline = SoftwareBaseline(hpca19())
        speedup = (baseline.mult_seconds()
                   * server.mult_throughput_per_second())
        assert speedup > 13.0
        assert speedup < 16.0  # and not absurdly optimistic


class TestWorkloads:
    def test_mult_stream(self):
        jobs = mult_stream(10)
        assert len(jobs) == 10
        assert all(j.kind is JobKind.MULT for j in jobs)

    def test_add_stream(self):
        assert all(j.kind is JobKind.ADD for j in add_stream(5))

    def test_mixed_composition(self):
        jobs = mixed_workload(4, 8, seed=0)
        mults = sum(j.kind is JobKind.MULT for j in jobs)
        adds = sum(j.kind is JobKind.ADD for j in jobs)
        assert mults == 4 and adds == 32

    def test_mixed_deterministic(self):
        a = mixed_workload(4, 8, seed=1)
        b = mixed_workload(4, 8, seed=1)
        assert [j.index for j in a] == [j.index for j in b]


class TestRelatedWork:
    def test_published_points_present(self):
        names = [p.name for p in published_points()]
        assert any("NFLlib" in name for name in names)
        assert any("V100" in name for name in names)
        assert any("Poppelmann" in name for name in names)
        assert any("HEPCloud" in name for name in names)

    def test_v100_entry_matches_paper_claim(self):
        """Paper: V100 at matched parameters does ~388 Mult/s."""
        v100 = next(p for p in published_points() if "V100" in p.name)
        assert abs(v100.mults_per_second - 388) / 388 < 0.02

    def test_our_point_beats_v100(self, server):
        power = PowerModel(CONFIG)
        ours = our_point(
            server.job_seconds(JobKind.MULT) * 1e3,
            CONFIG.num_coprocessors, power.peak_watts(),
        )
        v100 = next(p for p in published_points() if "V100" in p.name)
        assert ours.mults_per_second > v100.mults_per_second

    def test_ours_beats_every_published_point(self, server):
        """Sec. VI-E's overall conclusion."""
        power = PowerModel(CONFIG)
        ours = our_point(
            server.job_seconds(JobKind.MULT) * 1e3,
            CONFIG.num_coprocessors, power.peak_watts(),
        )
        for point in published_points():
            assert ours.mults_per_second > point.mults_per_second, point.name

    def test_power_advantage(self):
        """Our peak (8.7 W) is well below the GPU/CPU baselines."""
        power = PowerModel(CONFIG)
        for point in published_points():
            if point.power_watts is not None:
                assert power.peak_watts() < point.power_watts
