"""Tests for the DMA, resource, power, scaling, and config models
(paper Tables III, IV, V and Sec. VI-C/VI-D)."""

from dataclasses import replace

import pytest

from repro.errors import ParameterError
from repro.hw.config import HardwareConfig, slow_coprocessor_config
from repro.hw.dma import DmaModel
from repro.hw.power import PowerModel
from repro.hw.resources import (
    ZCU102_BRAM36,
    ZCU102_DSPS,
    ZCU102_LUTS,
    ZCU102_REGS,
    ResourceEstimator,
    Utilization,
)
from repro.hw.scaling import scaling_table
from repro.params import hpca19

CONFIG = HardwareConfig()
POLY_BYTES = 98_304  # one R_q polynomial, the Table III payload


class TestHardwareConfig:
    def test_paper_clocks(self):
        assert CONFIG.fpga_clock_hz == 200_000_000
        assert CONFIG.arm_clock_hz == 1_200_000_000
        assert CONFIG.dma_clock_hz == 250_000_000

    def test_paper_parallelism(self):
        assert CONFIG.num_rpaus == 7
        assert CONFIG.butterfly_cores_per_rpau == 2
        assert CONFIG.lift_cores == 2
        assert CONFIG.num_coprocessors == 2

    def test_arm_cycle_conversion(self):
        """Arm @1.2 GHz counts 6 cycles per FPGA cycle @200 MHz."""
        assert CONFIG.fpga_to_arm_cycles(1000) == 6000

    def test_batches(self):
        assert CONFIG.batches_for(6) == 1
        assert CONFIG.batches_for(13) == 2

    def test_slow_config(self):
        slow = slow_coprocessor_config()
        assert slow.fpga_clock_hz == 225_000_000
        assert not slow.use_hps
        assert slow.lift_cores == 4

    def test_validation(self):
        with pytest.raises(ParameterError):
            HardwareConfig(butterfly_cores_per_rpau=3)
        with pytest.raises(ParameterError):
            HardwareConfig(lift_cores=0)
        with pytest.raises(ParameterError):
            HardwareConfig(sliding_window_bits=0)


class TestDmaModel:
    @pytest.fixture(scope="class")
    def dma(self):
        return DmaModel(CONFIG)

    def test_single_transfer_matches_table3(self, dma):
        """Table III row 1: 98,304 bytes in ~76 us (90,708 Arm cycles)."""
        arm = dma.transfer_arm_cycles(POLY_BYTES)
        assert abs(arm - 90_708) / 90_708 < 0.03

    def test_1k_chunks_match_table3(self, dma):
        """Table III row 3: 1,024-byte chunks in ~202 us."""
        arm = dma.transfer_arm_cycles(POLY_BYTES, chunk_bytes=1024)
        assert abs(arm - 242_771) / 242_771 < 0.05

    def test_16k_chunks_direction(self, dma):
        """Table III row 2: 16 KiB chunks slower than one burst, faster
        than 1 KiB chunks (the fitted model lands ~24% below the paper's
        130,686 cycles; the ordering is the reproduced result)."""
        single = dma.transfer_arm_cycles(POLY_BYTES)
        chunk16 = dma.transfer_arm_cycles(POLY_BYTES, chunk_bytes=16_384)
        chunk1 = dma.transfer_arm_cycles(POLY_BYTES, chunk_bytes=1024)
        assert single < chunk16 < chunk1

    def test_send_two_ciphertexts_matches_table1(self, dma):
        """Table I: 434,013 Arm cycles = 362 us."""
        seconds = dma.send_ciphertexts_seconds(POLY_BYTES, 2)
        assert abs(seconds - 362e-6) / 362e-6 < 0.03

    def test_receive_ciphertext_matches_table1(self, dma):
        """Table I: 215,697 Arm cycles = 180 us."""
        seconds = dma.receive_ciphertext_seconds(POLY_BYTES)
        assert abs(seconds - 180e-6) / 180e-6 < 0.03

    def test_rejects_empty_transfer(self, dma):
        with pytest.raises(ParameterError):
            dma.transfer_seconds(0)

    def test_bandwidth_scales_time(self, dma):
        assert dma.transfer_seconds(2 * POLY_BYTES) > \
            dma.transfer_seconds(POLY_BYTES)


class TestResourceEstimator:
    @pytest.fixture(scope="class")
    def estimator(self):
        return ResourceEstimator(hpca19(), CONFIG)

    def test_single_coprocessor_near_paper(self, estimator):
        """Table IV row 2: 63,522 / 25,622 / 388 / 208 (within 10%)."""
        single = estimator.single_coprocessor()
        assert abs(single.luts - 63_522) / 63_522 < 0.10
        assert abs(single.regs - 25_622) / 25_622 < 0.10
        assert abs(single.bram36 - 388) / 388 < 0.10
        assert abs(single.dsps - 208) / 208 < 0.10

    def test_full_design_near_paper(self, estimator):
        """Table IV row 1: 133,692 / 60,312 / 815 / 416 (within 10%)."""
        full = estimator.full_design()
        assert abs(full.luts - 133_692) / 133_692 < 0.10
        assert abs(full.regs - 60_312) / 60_312 < 0.10
        assert abs(full.bram36 - 815) / 815 < 0.10
        assert abs(full.dsps - 416) / 416 < 0.10

    def test_utilization_percentages(self, estimator):
        """Paper: 49% LUT / 11% FF / 89% BRAM / 16% DSP for two."""
        pct = estimator.full_design().percentages()
        assert abs(pct["luts"] - 49) < 4
        assert abs(pct["regs"] - 11) < 3
        assert abs(pct["bram36"] - 89) < 6
        assert abs(pct["dsps"] - 16) < 4

    def test_design_is_memory_bound(self, estimator):
        """The paper's key observation: BRAM is the binding constraint."""
        pct = estimator.full_design().percentages()
        assert pct["bram36"] == max(pct.values())

    def test_fits_on_zcu102(self, estimator):
        full = estimator.full_design()
        assert full.luts <= ZCU102_LUTS
        assert full.regs <= ZCU102_REGS
        assert full.bram36 <= ZCU102_BRAM36
        assert full.dsps <= ZCU102_DSPS

    def test_breakdown_sums_to_total(self, estimator):
        breakdown = estimator.breakdown()
        parts = (breakdown["rpaus"] + breakdown["lift_cores"]
                 + breakdown["scale_cores"] + breakdown["memory_file"]
                 + breakdown["control"])
        single = breakdown["single_coprocessor"]
        assert (parts.luts, parts.dsps) == (single.luts, single.dsps)

    def test_structural_scaling_with_cores(self):
        base = ResourceEstimator(hpca19(), CONFIG).single_coprocessor()
        more = ResourceEstimator(
            hpca19(), replace(CONFIG, lift_cores=4, scale_cores=4)
        ).single_coprocessor()
        assert more.dsps > base.dsps
        assert more.luts > base.luts

    def test_utilization_addition(self):
        a = Utilization(1, 2, 3, 4)
        b = Utilization(10, 20, 30, 40)
        total = a + b
        assert (total.luts, total.regs, total.bram36, total.dsps) == \
            (11, 22, 33, 44)
        assert a.scaled(3).luts == 3


class TestPowerModel:
    @pytest.fixture(scope="class")
    def power(self):
        return PowerModel(CONFIG)

    def test_paper_measurements_exact(self, power):
        """Sec. VI-C: 5.3 W static, +2.2 W one core, +3.4 W two cores."""
        assert power.static_watts() == 5.3
        assert power.dynamic_watts(1) == pytest.approx(2.2)
        assert power.dynamic_watts(2) == pytest.approx(3.4)

    def test_peak_is_8_7_watts(self, power):
        """Sec. VI-E: 'peak power consumption of 8.7 W'."""
        assert power.peak_watts() == pytest.approx(8.7)

    def test_idle_consumes_only_static(self, power):
        assert power.total_watts(0) == 5.3

    def test_power_well_below_i5(self, power):
        """The paper's efficiency argument: i5 reaches ~40 W."""
        assert power.peak_watts() < 40 / 4

    def test_energy_per_mult(self, power):
        energy = power.energy_per_mult_joules(4.458e-3, 1)
        assert 0.02 < energy < 0.05  # tens of millijoules


class TestScalingModel:
    @pytest.fixture(scope="class")
    def table(self):
        base = ResourceEstimator(hpca19(), CONFIG).single_coprocessor()
        return scaling_table(base, 4.458e-3, 0.542e-3)

    def test_four_rows(self, table):
        assert [(p.n, p.log2_q) for p in table] == [
            (4096, 180), (8192, 360), (16384, 720), (32768, 1440),
        ]

    def test_compute_growth_matches_paper(self, table):
        """Paper Table V compute column: 4.46 -> 9.68 -> 21.0 -> 45.6."""
        paper = [4.46e-3, 9.68e-3, 21.0e-3, 45.6e-3]
        for point, expected in zip(table, paper, strict=True):
            assert abs(point.compute_seconds - expected) / expected < 0.02

    def test_comm_growth_matches_paper(self, table):
        """Paper Table V comm column: 0.54 -> 2.16 -> 8.64 -> 34.6."""
        paper = [0.54e-3, 2.16e-3, 8.64e-3, 34.6e-3]
        for point, expected in zip(table, paper, strict=True):
            assert abs(point.comm_seconds - expected) / expected < 0.02

    def test_total_matches_paper(self, table):
        """Paper Table V totals: 5.0 / 11.9 / 29.6 / 80.2 ms."""
        paper = [5.0e-3, 11.9e-3, 29.6e-3, 80.2e-3]
        for point, expected in zip(table, paper, strict=True):
            assert abs(point.total_seconds - expected) / expected < 0.03

    def test_bram_quadruples(self, table):
        for prev, curr in zip(table, table[1:], strict=False):
            assert curr.resources.bram36 == 4 * prev.resources.bram36

    def test_logic_doubles(self, table):
        for prev, curr in zip(table, table[1:], strict=False):
            assert curr.resources.luts == 2 * prev.resources.luts
            assert curr.resources.dsps == 2 * prev.resources.dsps

    def test_communication_overtakes_compute(self, table):
        """The paper's implicit trend: comm grows 4x vs compute 2.17x,
        so transfers dominate at large parameters."""
        ratios = [p.comm_seconds / p.compute_seconds for p in table]
        assert ratios == sorted(ratios)

    def test_rows_render(self, table):
        assert "msec" in table[0].row()
