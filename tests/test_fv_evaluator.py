"""Tests for homomorphic multiplication and relinearisation (Fig. 2)."""

import numpy as np
import pytest


from repro.errors import ParameterError
from repro.fv.encoder import Plaintext
from repro.fv.evaluator import Evaluator
from repro.fv.noise import (
    estimated_depth,
    noise_budget_bits,
    noise_of,
    per_mult_cost_bits,
)
from repro.fv.reference import TextbookFv
from repro.nttmath.ntt import negacyclic_convolution


def plain_product(a: Plaintext, b: Plaintext, t: int) -> list[int]:
    return negacyclic_convolution(a.coeffs.tolist(), b.coeffs.tolist(), t)


@pytest.fixture(scope="module")
def evaluator(toy_context):
    return Evaluator(toy_context)


@pytest.fixture(scope="module")
def trad_evaluator(toy_context):
    return Evaluator(toy_context, use_hps=False)


class TestMultiply:
    def test_mult_homomorphism(self, toy_context, toy_keys, evaluator, rng):
        params = toy_context.params
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        b = Plaintext(rng.integers(0, params.t, params.n), params.t)
        ct = evaluator.multiply(
            toy_context.encrypt(a, toy_keys.public),
            toy_context.encrypt(b, toy_keys.public),
            toy_keys.relin,
        )
        assert toy_context.decrypt(ct, toy_keys.secret).coeffs.tolist() \
            == plain_product(a, b, params.t)

    def test_mult_by_zero(self, toy_context, toy_keys, evaluator):
        params = toy_context.params
        a = Plaintext.from_list([1, 1, 1], params.n, params.t)
        zero = Plaintext.zero(params.n, params.t)
        ct = evaluator.multiply(
            toy_context.encrypt(a, toy_keys.public),
            toy_context.encrypt(zero, toy_keys.public),
            toy_keys.relin,
        )
        assert toy_context.decrypt(ct, toy_keys.secret) == zero

    def test_mult_by_one(self, toy_context, toy_keys, evaluator, rng):
        params = toy_context.params
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        one = Plaintext.from_list([1], params.n, params.t)
        ct = evaluator.multiply(
            toy_context.encrypt(a, toy_keys.public),
            toy_context.encrypt(one, toy_keys.public),
            toy_keys.relin,
        )
        assert toy_context.decrypt(ct, toy_keys.secret) == a

    def test_three_part_decryption(self, toy_context, toy_keys, evaluator,
                                   rng):
        """multiply_raw yields a valid 3-part ciphertext."""
        params = toy_context.params
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        b = Plaintext(rng.integers(0, params.t, params.n), params.t)
        raw = evaluator.multiply_raw(
            toy_context.encrypt(a, toy_keys.public),
            toy_context.encrypt(b, toy_keys.public),
        )
        assert raw.size == 3
        assert toy_context.decrypt(raw, toy_keys.secret).coeffs.tolist() \
            == plain_product(a, b, params.t)

    def test_relin_preserves_plaintext(self, toy_context, toy_keys,
                                       evaluator, rng):
        params = toy_context.params
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        b = Plaintext(rng.integers(0, params.t, params.n), params.t)
        raw = evaluator.multiply_raw(
            toy_context.encrypt(a, toy_keys.public),
            toy_context.encrypt(b, toy_keys.public),
        )
        relined = evaluator.relinearize(raw, toy_keys.relin)
        assert relined.size == 2
        assert toy_context.decrypt(relined, toy_keys.secret) == \
            toy_context.decrypt(raw, toy_keys.secret)

    def test_relin_noise_cost_is_small(self, toy_context, toy_keys,
                                       evaluator, rng):
        params = toy_context.params
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        raw = evaluator.multiply_raw(
            toy_context.encrypt(a, toy_keys.public),
            toy_context.encrypt(a, toy_keys.public),
        )
        relined = evaluator.relinearize(raw, toy_keys.relin)
        raw_noise = noise_of(toy_context, raw, toy_keys.secret)
        rel_noise = noise_of(toy_context, relined, toy_keys.secret)
        # Relinearisation adds noise but only an additive term.
        assert rel_noise < raw_noise * 64 + 2**40

    def test_traditional_path_same_plaintext(self, toy_context, toy_keys,
                                             evaluator, trad_evaluator, rng):
        """HPS and traditional-CRT evaluators agree on the decryption."""
        params = toy_context.params
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        b = Plaintext(rng.integers(0, params.t, params.n), params.t)
        ct_a = toy_context.encrypt(a, toy_keys.public)
        ct_b = toy_context.encrypt(b, toy_keys.public)
        hps = evaluator.multiply(ct_a, ct_b, toy_keys.relin)
        trad = trad_evaluator.multiply(ct_a, ct_b, toy_keys.relin)
        assert toy_context.decrypt(hps, toy_keys.secret) == \
            toy_context.decrypt(trad, toy_keys.secret)

    def test_hps_and_traditional_noise_comparable(self, toy_context,
                                                  toy_keys, evaluator,
                                                  trad_evaluator, rng):
        """The two paths produce different (but equivalent) ciphertexts.

        The HPS lift uses centered representatives and the traditional
        lift standard ones, so the tensor products differ by q-multiples
        that land in the noise term (the K-polynomial of the BFV
        analysis). Decryption agrees; the noise magnitudes must stay
        within a small factor of each other (centered representatives
        halve the bound, so a factor-4 envelope is generous).
        """
        params = toy_context.params
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        ct = toy_context.encrypt(a, toy_keys.public)
        hps = evaluator.multiply_raw(ct, ct)
        trad = trad_evaluator.multiply_raw(ct, ct)
        _, hps_noise = toy_context.decrypt_with_noise(hps, toy_keys.secret)
        _, trad_noise = toy_context.decrypt_with_noise(trad,
                                                       toy_keys.secret)
        assert hps_noise <= trad_noise * 4
        assert trad_noise <= hps_noise * 4

    def test_tensor_rejects_three_part_inputs(self, toy_context, toy_keys,
                                              evaluator, rng):
        params = toy_context.params
        a = Plaintext.zero(params.n, params.t)
        ct = toy_context.encrypt(a, toy_keys.public)
        raw = evaluator.multiply_raw(ct, ct)
        with pytest.raises(ParameterError):
            evaluator.tensor(raw, ct)

    def test_relinearize_rejects_two_part(self, toy_context, toy_keys,
                                          evaluator):
        params = toy_context.params
        ct = toy_context.encrypt(Plaintext.zero(params.n, params.t),
                                 toy_keys.public)
        with pytest.raises(ParameterError):
            evaluator.relinearize(ct, toy_keys.relin)

    def test_mult_matches_textbook(self, toy_context, toy_keys, evaluator,
                                   rng):
        """RNS mult and exact big-int mult agree on the plaintext."""
        params = toy_context.params
        textbook = TextbookFv(params)
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        b = Plaintext(rng.integers(0, params.t, params.n), params.t)
        ct_a = toy_context.encrypt(a, toy_keys.public)
        ct_b = toy_context.encrypt(b, toy_keys.public)
        rns_result = evaluator.multiply(ct_a, ct_b, toy_keys.relin)
        s_poly = textbook.poly_from_rns(toy_keys.secret.rns)
        tb_raw = textbook.multiply_raw(
            textbook.ciphertext_from_rns(ct_a),
            textbook.ciphertext_from_rns(ct_b),
        )
        assert textbook.decrypt(tb_raw, s_poly).coeffs.tolist() == \
            toy_context.decrypt(rns_result, toy_keys.secret).coeffs.tolist()


class TestDigitRelin:
    def test_digit_relin_correct(self, toy_context, toy_keys, evaluator,
                                 rng):
        params = toy_context.params
        digit_key = toy_context.relin_keygen_digit(toy_keys.secret,
                                                   base_bits=30)
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        b = Plaintext(rng.integers(0, params.t, params.n), params.t)
        raw = evaluator.multiply_raw(
            toy_context.encrypt(a, toy_keys.public),
            toy_context.encrypt(b, toy_keys.public),
        )
        relined = evaluator.relinearize_digit(raw, digit_key)
        assert toy_context.decrypt(relined, toy_keys.secret).coeffs.tolist() \
            == plain_product(a, b, params.t)

    def test_two_component_key_like_slow_coprocessor(self, toy_context,
                                                     toy_keys, evaluator,
                                                     rng):
        """The paper's slow design uses a 2-component (90-bit digit) key."""
        params = toy_context.params
        base_bits = -(-params.q.bit_length() // 2)
        digit_key = toy_context.relin_keygen_digit(toy_keys.secret,
                                                   base_bits=base_bits)
        assert digit_key.num_components == 2
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        raw = evaluator.multiply_raw(
            toy_context.encrypt(a, toy_keys.public),
            toy_context.encrypt(a, toy_keys.public),
        )
        relined = evaluator.relinearize_digit(raw, digit_key)
        assert toy_context.decrypt(relined, toy_keys.secret).coeffs.tolist() \
            == plain_product(a, a, params.t)

    def test_key_sizes_match_paper_ratio(self, toy_context, toy_keys):
        """RNS key (k_q components) is ~3x the 2-component digit key."""
        params = toy_context.params
        digit_key = toy_context.relin_keygen_digit(
            toy_keys.secret, base_bits=-(-params.q.bit_length() // 2)
        )
        rns_bytes = toy_keys.relin.key_bytes(params.n)
        digit_bytes = digit_key.key_bytes(params.n)
        assert rns_bytes == digit_bytes * params.k_q // 2


class TestDepth:
    def test_depth_four_supported(self, mini_context, mini_keys):
        """Paper Sec. III-A: the parameter shape supports depth 4."""
        params = mini_context.params
        evaluator = Evaluator(mini_context)
        plain = Plaintext.from_list([1], params.n, params.t)
        ct = mini_context.encrypt(plain, mini_keys.public)
        for _ in range(4):
            ct = evaluator.multiply(ct, ct, mini_keys.relin)
        decrypted = mini_context.decrypt(ct, mini_keys.secret)
        assert decrypted.coeffs[0] == 1
        assert np.all(decrypted.coeffs[1:] == 0)

    def test_budget_decreases_monotonically(self, mini_context, mini_keys):
        evaluator = Evaluator(mini_context)
        params = mini_context.params
        plain = Plaintext.from_list([1, 1], params.n, params.t)
        ct = mini_context.encrypt(plain, mini_keys.public)
        budgets = [noise_budget_bits(mini_context, ct, mini_keys.secret)]
        for _ in range(3):
            ct = evaluator.multiply(ct, ct, mini_keys.relin)
            budgets.append(
                noise_budget_bits(mini_context, ct, mini_keys.secret)
            )
        assert all(b1 > b2 for b1, b2 in zip(budgets, budgets[1:], strict=False))
        assert budgets[-1] > 0

    def test_depth_estimator(self):
        assert estimated_depth(100.0, 20.0) == 5
        assert estimated_depth(100.0, 0.0) == 0

    def test_per_mult_cost(self, mini_context, mini_keys):
        evaluator = Evaluator(mini_context)
        params = mini_context.params
        plain = Plaintext.from_list([1, 1], params.n, params.t)
        ct = mini_context.encrypt(plain, mini_keys.public)
        fresh = noise_budget_bits(mini_context, ct, mini_keys.secret)
        after = noise_budget_bits(
            mini_context,
            evaluator.multiply(ct, ct, mini_keys.relin),
            mini_keys.secret,
        )
        cost = per_mult_cost_bits(mini_context, fresh, after)
        assert 0 < cost < fresh
