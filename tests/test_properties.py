"""Cross-cutting property-based tests (hypothesis).

These target the invariants that tie the layers together: the algebra of
the ring, the exactness of the RNS conversions, the equivalence of the
hardware datapaths with the mathematics, and the homomorphic property of
the scheme itself under random plaintexts.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fv.encoder import Plaintext
from repro.fv.evaluator import Evaluator
from repro.hw.config import HardwareConfig
from repro.hw.modred import SlidingWindowReducer
from repro.hw.ntt_unit import DualCoreNttUnit, NttSchedule
from repro.nttmath.ntt import NegacyclicTransformer, negacyclic_convolution
from repro.params import toy
from repro.rns.basis import basis_for, lift_context, scale_context
from repro.rns.lift import lift_hps
from repro.rns.scale import scale_hps
from repro.utils import round_half_away

PARAMS = toy()
PRIME = PARAMS.q_primes[0]
N = PARAMS.n

slow_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

coeff_vectors = st.lists(
    st.integers(0, PRIME - 1), min_size=N, max_size=N
)


class TestRingAlgebraProperties:
    @slow_settings
    @given(coeff_vectors, coeff_vectors, coeff_vectors)
    def test_multiplication_distributes(self, a, b, c):
        tr = NegacyclicTransformer(N, PRIME)
        a, b, c = (np.array(v, dtype=np.int64) for v in (a, b, c))
        left = tr.multiply(a, (b + c) % PRIME)
        right = (tr.multiply(a, b) + tr.multiply(a, c)) % PRIME
        assert np.array_equal(left, right)

    @slow_settings
    @given(coeff_vectors, coeff_vectors)
    def test_multiplication_commutes(self, a, b):
        tr = NegacyclicTransformer(N, PRIME)
        a, b = np.array(a, dtype=np.int64), np.array(b, dtype=np.int64)
        assert np.array_equal(tr.multiply(a, b), tr.multiply(b, a))

    @slow_settings
    @given(coeff_vectors)
    def test_transform_bijective(self, a):
        tr = NegacyclicTransformer(N, PRIME)
        a = np.array(a, dtype=np.int64)
        assert np.array_equal(tr.inverse(tr.forward(a)), a)

    @slow_settings
    @given(st.integers(0, PRIME - 1), coeff_vectors)
    def test_scalar_linearity(self, scalar, a):
        tr = NegacyclicTransformer(N, PRIME)
        a = np.array(a, dtype=np.int64)
        scaled_then = tr.forward((a * scalar) % PRIME)
        then_scaled = (tr.forward(a) * scalar) % PRIME
        assert np.array_equal(scaled_then, then_scaled)


class TestRnsConversionProperties:
    @slow_settings
    @given(st.data())
    def test_lift_then_reduce_is_identity(self, data):
        """Lifting and reducing back modulo q-primes returns the input."""
        q_basis = basis_for(PARAMS.q_primes)
        ctx = lift_context(PARAMS.q_primes, PARAMS.p_primes)
        columns = data.draw(st.integers(1, 8))
        residues = np.array([
            [data.draw(st.integers(0, p - 1)) for _ in range(columns)]
            for p in PARAMS.q_primes
        ], dtype=np.int64)
        lifted = lift_hps(ctx, residues)
        p_basis = basis_for(PARAMS.p_primes)
        for col in range(columns):
            value = p_basis.reconstruct_centered(lifted[:, col])
            original = q_basis.reconstruct(residues[:, col])
            assert value % q_basis.modulus == original

    @slow_settings
    @given(st.data())
    def test_scale_is_division_with_rounding(self, data):
        full = basis_for(PARAMS.q_primes + PARAMS.p_primes)
        q = basis_for(PARAMS.q_primes).modulus
        ctx = scale_context(PARAMS.q_primes, PARAMS.p_primes, PARAMS.t)
        bound = PARAMS.n * (q // 2) ** 2
        values = [
            data.draw(st.integers(-bound, bound)) for _ in range(4)
        ]
        residues = full.residues_of_coeffs(values)
        out = scale_hps(ctx, residues)
        for col, value in enumerate(values):
            want = round_half_away(PARAMS.t * value, q)
            for i, prime in enumerate(PARAMS.q_primes):
                assert out[i, col] == want % prime

    @slow_settings
    @given(st.data())
    def test_crt_bijection(self, data):
        basis = basis_for(PARAMS.q_primes)
        value = data.draw(st.integers(0, basis.modulus - 1))
        assert basis.reconstruct(basis.residues_of(value)) == value


class TestHardwareEquivalenceProperties:
    @slow_settings
    @given(coeff_vectors)
    def test_hw_ntt_equals_math_ntt(self, coeffs):
        unit = DualCoreNttUnit(N, PRIME, HardwareConfig())
        tr = NegacyclicTransformer(N, PRIME)
        values = np.array(coeffs, dtype=np.int64)
        hw_result, _ = unit.run_fast(values)
        assert np.array_equal(hw_result, tr.forward(values))

    @slow_settings
    @given(st.integers(0, (1 << 60) - 1))
    def test_reduction_circuit_equals_modulo(self, value):
        reducer = SlidingWindowReducer(PRIME)
        assert reducer.reduce(value) == value % PRIME

    @settings(max_examples=10, deadline=None)
    @given(st.sampled_from([16, 32, 64, 128, 256]),
           st.sampled_from([1, 2]))
    def test_schedule_covers_all_words_any_geometry(self, n, cores):
        schedule = NttSchedule(n, cores)
        for stage in range(1, schedule.log_n + 1):
            reads = sorted(
                w for order in schedule.read_order(stage) for w in order
            )
            writes = sorted(
                w for order in schedule.write_order(stage) for w in order
            )
            assert reads == list(range(schedule.words))
            assert writes == list(range(schedule.words))


class TestDecompositionProperties:
    @slow_settings
    @given(st.data())
    def test_grouped_digits_reconstruct(self, data):
        """For any residues and any group size, the grouped digits
        weighted by the key constants reconstruct the input."""
        from repro.rns.decompose import (
            grouped_reconstruction_weights,
            grouped_rns_digits,
        )

        basis = basis_for(PARAMS.q_primes)
        group_size = data.draw(st.integers(1, basis.size))
        columns = data.draw(st.integers(1, 4))
        residues = np.array([
            [data.draw(st.integers(0, p - 1)) for _ in range(columns)]
            for p in basis.primes
        ], dtype=np.int64)
        digits = grouped_rns_digits(basis, residues, group_size)
        weights = grouped_reconstruction_weights(basis, group_size)
        acc = np.zeros_like(residues)
        for j, weight in enumerate(weights):
            weight_col = np.array(
                [weight % p for p in basis.primes], dtype=np.int64
            )[:, None]
            acc = (acc + digits[j] * weight_col) % basis.primes_col
        assert np.array_equal(acc, residues)

    @slow_settings
    @given(st.sampled_from([3, 5, 9, 15, 127]))
    def test_galois_is_invertible(self, g):
        """tau_g has an inverse automorphism tau_{g^-1 mod 2n}."""
        from repro.fv.galois import apply_galois_rows

        n = PARAMS.n
        g_inv = pow(g, -1, 2 * n)
        rng = np.random.default_rng(g)
        rows = rng.integers(0, PRIME, (1, n))
        mod_col = np.array([[PRIME]])
        there = apply_galois_rows(rows, mod_col, n, g)
        back = apply_galois_rows(there, mod_col, n, g_inv)
        assert np.array_equal(back, rows % PRIME)


class TestHomomorphicProperties:
    @pytest.fixture(scope="class")
    def machinery(self, toy_context, toy_keys):
        return toy_context, toy_keys, Evaluator(toy_context)

    @slow_settings
    @given(st.data())
    def test_additive_homomorphism(self, machinery, data):
        context, keys, _ = machinery
        t, n = context.params.t, context.params.n
        a = np.array(
            [data.draw(st.integers(0, t - 1)) for _ in range(8)],
            dtype=np.int64,
        )
        b = np.array(
            [data.draw(st.integers(0, t - 1)) for _ in range(8)],
            dtype=np.int64,
        )
        pa = Plaintext.from_list(a.tolist(), n, t)
        pb = Plaintext.from_list(b.tolist(), n, t)
        ct = context.add(context.encrypt(pa, keys.public),
                         context.encrypt(pb, keys.public))
        decrypted = context.decrypt(ct, keys.secret)
        assert decrypted.coeffs[:8].tolist() == ((a + b) % t).tolist()

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_multiplicative_homomorphism(self, machinery, data):
        context, keys, evaluator = machinery
        t, n = context.params.t, context.params.n
        a = [data.draw(st.integers(0, t - 1)) for _ in range(4)]
        b = [data.draw(st.integers(0, t - 1)) for _ in range(4)]
        pa = Plaintext.from_list(a, n, t)
        pb = Plaintext.from_list(b, n, t)
        ct = evaluator.multiply(
            context.encrypt(pa, keys.public),
            context.encrypt(pb, keys.public),
            keys.relin,
        )
        decrypted = context.decrypt(ct, keys.secret)
        expected = negacyclic_convolution(
            pa.coeffs.tolist(), pb.coeffs.tolist(), t
        )
        assert decrypted.coeffs.tolist() == expected

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_mixed_circuit(self, machinery, data):
        """(a + b) * c decrypts to the plaintext circuit's output."""
        context, keys, evaluator = machinery
        t, n = context.params.t, context.params.n
        vectors = [
            [data.draw(st.integers(0, t - 1)) for _ in range(3)]
            for _ in range(3)
        ]
        plains = [Plaintext.from_list(v, n, t) for v in vectors]
        cts = [context.encrypt(p, keys.public) for p in plains]
        result = evaluator.multiply(
            context.add(cts[0], cts[1]), cts[2], keys.relin
        )
        summed = (plains[0].coeffs + plains[1].coeffs) % t
        expected = negacyclic_convolution(
            summed.tolist(), plains[2].coeffs.tolist(), t
        )
        assert context.decrypt(result, keys.secret).coeffs.tolist() \
            == expected
