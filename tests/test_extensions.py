"""Tests for the extension modules: analytic noise model, encrypted
comparator, network model, NTT trace, and CLI."""

import itertools

import pytest

from repro.apps.comparator import EncryptedComparator, comparator_depth
from repro.cli import main as cli_main
from repro.errors import ParameterError
from repro.fv.encoder import Plaintext
from repro.fv.evaluator import Evaluator
from repro.fv.noise import noise_of
from repro.fv.noise_model import NoiseModel
from repro.fv.scheme import FvContext
from repro.hw.trace import NttTrace, render_fig3
from repro.params import hpca19, mini, toy
from repro.system.network import ClientSession, NetworkModel
from repro.system.server import CloudServer


class TestNoiseModel:
    def test_fresh_bound_dominates_measured(self, toy_context, toy_keys):
        """The analytic bound must envelope actual fresh noise."""
        model = NoiseModel(toy_context.params)
        plain = Plaintext.zero(toy_context.params.n, toy_context.params.t)
        for _ in range(5):
            ct = toy_context.encrypt(plain, toy_keys.public)
            measured = noise_of(toy_context, ct, toy_keys.secret)
            assert measured <= model.fresh_bound()

    def test_add_bound_dominates_measured(self, toy_context, toy_keys):
        model = NoiseModel(toy_context.params)
        plain = Plaintext.zero(toy_context.params.n, toy_context.params.t)
        ct1 = toy_context.encrypt(plain, toy_keys.public)
        ct2 = toy_context.encrypt(plain, toy_keys.public)
        n1 = noise_of(toy_context, ct1, toy_keys.secret)
        n2 = noise_of(toy_context, ct2, toy_keys.secret)
        summed = toy_context.add(ct1, ct2)
        assert noise_of(toy_context, summed, toy_keys.secret) \
            <= model.add_bound(n1, n2)

    def test_mult_bound_dominates_measured(self, toy_context, toy_keys):
        model = NoiseModel(toy_context.params)
        evaluator = Evaluator(toy_context)
        plain = Plaintext.from_list([1, 1], toy_context.params.n,
                                    toy_context.params.t)
        ct = toy_context.encrypt(plain, toy_keys.public)
        fresh = noise_of(toy_context, ct, toy_keys.secret)
        product = evaluator.multiply(ct, ct, toy_keys.relin)
        measured = noise_of(toy_context, product, toy_keys.secret)
        assert measured <= model.mult_relin_bound(fresh, fresh)

    def test_paper_set_supports_depth_four(self):
        """The paper's central sizing claim, predicted analytically."""
        assert NoiseModel(hpca19()).supported_depth() >= 4

    def test_depth_monotone_in_modulus(self):
        assert NoiseModel(hpca19()).supported_depth() \
            >= NoiseModel(toy()).supported_depth()

    def test_depth_prediction_matches_observation(self, mini_context,
                                                  mini_keys):
        """Worst-case analytic depth is a lower bound on observed depth."""
        model = NoiseModel(mini_context.params)
        analytic = model.supported_depth()
        evaluator = Evaluator(mini_context)
        plain = Plaintext.from_list([1], mini_context.params.n,
                                    mini_context.params.t)
        ct = mini_context.encrypt(plain, mini_keys.public)
        reached = 0
        for _ in range(analytic):
            ct = evaluator.multiply(ct, ct, mini_keys.relin)
            decrypted = mini_context.decrypt(ct, mini_keys.secret)
            if decrypted.coeffs[0] != 1 or decrypted.coeffs[1:].any():
                break
            reached += 1
        assert reached >= analytic

    def test_report_renders(self):
        report = NoiseModel(hpca19()).report()
        assert "supported depth" in report

    def test_budget_bits(self):
        model = NoiseModel(hpca19())
        assert model.budget_bits(1) > model.budget_bits(2 ** 50)
        assert model.budget_bits(model.decryption_threshold * 2) == 0.0


@pytest.fixture(scope="module")
def comparator_context():
    return FvContext(mini(t=2), seed=31)


@pytest.fixture(scope="module")
def comparator_keys(comparator_context):
    return comparator_context.keygen()


class TestComparator:
    def test_less_than_exhaustive_2bit(self, comparator_context,
                                       comparator_keys):
        comparator = EncryptedComparator(comparator_context,
                                         comparator_keys, bits=2)
        for x, y in itertools.product(range(4), repeat=2):
            lt = comparator.decrypt_bit(
                comparator.less_than(comparator.encrypt_value(x),
                                     comparator.encrypt_value(y))
            )
            assert lt == int(x < y), (x, y)

    def test_compare_and_swap_sorts(self, comparator_context,
                                    comparator_keys):
        comparator = EncryptedComparator(comparator_context,
                                         comparator_keys, bits=3)
        for x, y in ((5, 2), (0, 7), (3, 3), (6, 1)):
            low, high = comparator.sort_two(x, y)
            assert (low, high) == (min(x, y), max(x, y)), (x, y)

    def test_value_roundtrip(self, comparator_context, comparator_keys):
        comparator = EncryptedComparator(comparator_context,
                                         comparator_keys, bits=4)
        for value in (0, 7, 15):
            assert comparator.decrypt_value(
                comparator.encrypt_value(value)
            ) == value

    def test_depth_formula(self):
        assert comparator_depth(1) == 1
        assert comparator_depth(3) == 3

    def test_rejects_oversized_value(self, comparator_context,
                                     comparator_keys):
        comparator = EncryptedComparator(comparator_context,
                                         comparator_keys, bits=2)
        with pytest.raises(ParameterError):
            comparator.encrypt_value(4)

    def test_rejects_non_binary_plaintext(self, mini_context, mini_keys):
        if mini_context.params.t == 2:
            pytest.skip("fixture uses t = 2")
        with pytest.raises(ParameterError):
            EncryptedComparator(mini_context, mini_keys, bits=2)

    def test_rejects_mismatched_widths(self, comparator_context,
                                       comparator_keys):
        comparator = EncryptedComparator(comparator_context,
                                         comparator_keys, bits=3)
        a = comparator.encrypt_value(1)
        with pytest.raises(ParameterError):
            comparator.less_than(a[:2], a)


class TestNetworkModel:
    @pytest.fixture(scope="class")
    def client(self):
        params = hpca19()
        return ClientSession(params, CloudServer(params))

    def test_round_trip_composition(self, client):
        trip = client.mult_round_trip()
        assert trip.total_seconds == pytest.approx(
            trip.upload_seconds + trip.server_seconds
            + trip.download_seconds
        )
        assert trip.upload_seconds > trip.download_seconds

    def test_naive_deployment_is_network_bound(self, client):
        """The extension finding: gigabit Ethernet cannot feed 400/s of
        one-shot multiplications (2 x 196 KiB operands each)."""
        assert client.is_network_bound()
        assert client.network_bound_throughput() < 300

    def test_batching_recovers_fpga_throughput(self, client):
        assert client.batched_throughput(4) == pytest.approx(
            client.server.mult_throughput_per_second()
        )

    def test_effective_throughput_is_minimum(self, client):
        assert client.effective_throughput() == pytest.approx(
            min(client.server.mult_throughput_per_second(),
                client.network_bound_throughput())
        )

    def test_batching_validation(self, client):
        with pytest.raises(ValueError):
            client.batched_throughput(0)

    def test_faster_network_removes_bottleneck(self):
        params = hpca19()
        tenG = NetworkModel(bandwidth_bytes_per_sec=10 * 125_000_000)
        client = ClientSession(params, CloudServer(params), tenG)
        assert not client.is_network_bound()


class TestNttTrace:
    def test_capture_and_verify(self):
        trace = NttTrace.capture(256)
        trace.verify_port_limits()
        # log2(256) stages x (reads + writes) x 128 words.
        assert len(trace.events) == 8 * 2 * 128

    def test_stage_filtering(self):
        trace = NttTrace.capture(64)
        reads = trace.stage_events(1, kind="R")
        assert len(reads) == 32
        assert all(e.kind == "R" for e in reads)

    def test_occupancy_at_most_one(self):
        trace = NttTrace.capture(128)
        for stage in range(1, 8):
            assert all(
                count == 1
                for count in trace.port_occupancy(stage).values()
            )

    def test_render_fig3_contains_inverted_order(self):
        figure = render_fig3(4096)
        assert "1536, 512, 1537, 513" in figure
        assert "0, 1024, 1, 1025" in figure

    def test_render_small_ring(self):
        assert "Iteration m = 2" in render_fig3(64)


class TestCli:
    @pytest.mark.parametrize("command", [
        "table2", "table3", "table4", "table5", "fig3", "noise", "list",
    ])
    def test_commands_run(self, command, capsys):
        assert cli_main([command]) == 0
        output = capsys.readouterr().out
        assert len(output) > 20

    def test_table1_and_headline(self, capsys):
        assert cli_main(["table1"]) == 0
        assert cli_main(["headline"]) == 0
        output = capsys.readouterr().out
        assert "Mult" in output and "speedup" in output

    def test_program_command(self, capsys):
        """The facade demo: one graph, both executors, latency table."""
        assert cli_main(["program", "--shards", "2",
                         "--requests", "40"]) == 0
        output = capsys.readouterr().out
        assert "LocalBackend" in output and "OK" in output
        assert "SimulatedBackend" in output and "p99" in output

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            cli_main(["nope"])
