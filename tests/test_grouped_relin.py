"""Tests for grouped RNS relinearisation and the Table V validation.

The headline finding (documented in EXPERIMENTS.md): the paper's Table V
scaling rule implicitly assumes the relinearisation component count stays
constant as the basis grows. With naive per-prime digits the simulated
(2^13, 360-bit) Mult grows 3.6x; with 60-bit grouped digits it lands on
the paper's 9.68 ms estimate almost exactly.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.fv.encoder import Plaintext
from repro.fv.evaluator import Evaluator
from repro.fv.scheme import FvContext
from repro.hw.config import HardwareConfig
from repro.hw.coprocessor import Coprocessor
from repro.nttmath.ntt import negacyclic_convolution
from repro.params import table5_large
from repro.rns.basis import basis_for
from repro.rns.decompose import (
    grouped_reconstruction_weights,
    grouped_rns_digits,
    prime_groups,
)


class TestGroupedDecomposition:
    @pytest.fixture(scope="class")
    def basis(self, mini_params):
        return basis_for(mini_params.q_primes)

    def test_prime_groups_partition(self):
        groups = prime_groups(6, 2)
        assert groups == [(0, 1), (2, 3), (4, 5)]
        assert prime_groups(5, 2) == [(0, 1), (2, 3), (4,)]

    def test_prime_groups_validation(self):
        with pytest.raises(ParameterError):
            prime_groups(6, 0)

    def test_reconstruction_identity(self, basis, rng):
        """sum_j [a]_{Q_j} * w_j ≡ a (mod q) for the key weights."""
        weights = grouped_reconstruction_weights(basis, 2)
        groups = prime_groups(basis.size, 2)
        for _ in range(50):
            value = int.from_bytes(rng.bytes(16), "little") % basis.modulus
            total = 0
            for group, weight in zip(groups, weights, strict=True):
                modulus = 1
                for i in group:
                    modulus *= basis.primes[i]
                total += (value % modulus) * weight
            assert total % basis.modulus == value

    def test_digits_reconstruct_residues(self, basis, rng):
        n = 16
        residues = np.stack([
            rng.integers(0, p, n) for p in basis.primes
        ]).astype(np.int64)
        digits = grouped_rns_digits(basis, residues, 2)
        weights = grouped_reconstruction_weights(basis, 2)
        acc = np.zeros_like(residues)
        for j, weight in enumerate(weights):
            weight_col = np.array(
                [weight % p for p in basis.primes], dtype=np.int64
            )[:, None]
            acc = (acc + digits[j] * weight_col) % basis.primes_col
        assert np.array_equal(acc, residues)

    def test_digit_count(self, basis):
        assert grouped_rns_digits(
            basis, np.zeros((basis.size, 4), dtype=np.int64), 2
        ).shape[0] == -(-basis.size // 2)

    def test_group_of_one_equals_raw_digits(self, basis, rng):
        """group_size=1 degenerates to the per-prime raw-residue digits."""
        n = 8
        residues = np.stack([
            rng.integers(0, p, n) for p in basis.primes
        ]).astype(np.int64)
        digits = grouped_rns_digits(basis, residues, 1)
        for i in range(basis.size):
            expected = residues[i][None, :] % basis.primes_col
            assert np.array_equal(digits[i], expected)

    def test_rejects_wrong_shape(self, basis):
        with pytest.raises(ParameterError):
            grouped_rns_digits(basis, np.zeros((2, 4), dtype=np.int64), 2)


class TestGroupedRelinearisation:
    def test_sw_grouped_relin_correct(self, toy_context, toy_keys, rng):
        params = toy_context.params
        grouped = toy_context.relin_keygen_grouped(toy_keys.secret, 2)
        evaluator = Evaluator(toy_context)
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        b = Plaintext(rng.integers(0, params.t, params.n), params.t)
        raw = evaluator.multiply_raw(
            toy_context.encrypt(a, toy_keys.public),
            toy_context.encrypt(b, toy_keys.public),
        )
        relined = evaluator.relinearize_grouped(raw, grouped)
        expected = negacyclic_convolution(
            a.coeffs.tolist(), b.coeffs.tolist(), params.t
        )
        assert toy_context.decrypt(
            relined, toy_keys.secret
        ).coeffs.tolist() == expected

    def test_hw_grouped_relin_bit_exact(self, mini_context, mini_keys,
                                        rng):
        params = mini_context.params
        grouped = mini_context.relin_keygen_grouped(mini_keys.secret, 2)
        evaluator = Evaluator(mini_context)
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        ct = mini_context.encrypt(a, mini_keys.public)
        sw = evaluator.relinearize_grouped(
            evaluator.multiply_raw(ct, ct), grouped
        )
        hw, report = Coprocessor(params).mult(ct, ct, grouped)
        assert np.array_equal(hw.c0.residues, sw.c0.residues)
        assert np.array_equal(hw.c1.residues, sw.c1.residues)

    def test_component_count_halved(self, mini_context, mini_keys):
        grouped = mini_context.relin_keygen_grouped(mini_keys.secret, 2)
        assert grouped.num_components == \
            -(-mini_context.params.k_q // 2)

    def test_fewer_key_loads_fewer_cycles(self, mini_context, mini_keys,
                                          rng):
        """The grouped key halves relin NTTs, products, and streaming."""
        params = mini_context.params
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        ct = mini_context.encrypt(a, mini_keys.public)
        coprocessor = Coprocessor(params)
        _, report_rns = coprocessor.mult(ct, ct, mini_keys.relin)
        grouped = mini_context.relin_keygen_grouped(mini_keys.secret, 2)
        _, report_grouped = coprocessor.mult(ct, ct, grouped)
        assert report_grouped.total_cycles < report_rns.total_cycles
        assert report_grouped.transfer_cycles < report_rns.transfer_cycles

    def test_grouped_noise_larger_but_bounded(self, toy_context, toy_keys,
                                              rng):
        """60-bit digits add more noise than 30-bit ones but stay far
        below threshold (the classic digit-size trade-off)."""
        from repro.fv.noise import noise_of

        params = toy_context.params
        grouped = toy_context.relin_keygen_grouped(toy_keys.secret, 2)
        evaluator = Evaluator(toy_context)
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        ct = toy_context.encrypt(a, toy_keys.public)
        raw = evaluator.multiply_raw(ct, ct)
        fine = evaluator.relinearize(raw, toy_keys.relin)
        coarse = evaluator.relinearize_grouped(raw, grouped)
        assert noise_of(toy_context, coarse, toy_keys.secret) \
            < params.q // (2 * params.t)
        # Both decrypt identically.
        assert toy_context.decrypt(fine, toy_keys.secret) == \
            toy_context.decrypt(coarse, toy_keys.secret)


@pytest.mark.slow
class TestTable5DirectValidation:
    """Execute the paper's second Table V point instead of extrapolating."""

    @pytest.fixture(scope="class")
    def large_setup(self):
        params = table5_large()
        context = FvContext(params, seed=3)
        keys = context.keygen()
        grouped = context.relin_keygen_grouped(keys.secret, 2)
        config = replace(HardwareConfig(), num_rpaus=13, lift_cores=4,
                         scale_cores=4)
        return params, context, keys, grouped, config

    def test_simulated_mult_matches_paper_estimate(self, large_setup):
        """Paper Table V row 2: 9.68 ms computation — within 5%."""
        params, context, keys, grouped, config = large_setup
        plain = Plaintext.from_list([1, 1], params.n, params.t)
        ct = context.encrypt(plain, keys.public)
        result, report = Coprocessor(params, config).mult(ct, ct, grouped)
        assert abs(report.seconds - 9.68e-3) / 9.68e-3 < 0.05
        decrypted = context.decrypt(result, keys.secret)
        assert decrypted.coeffs[0] == 1 and decrypted.coeffs[2] == 1

    def test_per_prime_digits_break_the_scaling_model(self, large_setup):
        """With naive per-prime digits the same point exceeds 13 ms —
        the scaling rule implicitly assumes grouped digits."""
        params, context, keys, grouped, config = large_setup
        plain = Plaintext.from_list([1], params.n, params.t)
        ct = context.encrypt(plain, keys.public)
        _, report = Coprocessor(params, config).mult(ct, ct, keys.relin)
        assert report.seconds > 13e-3