"""Tests for the client facade: sessions, handles, programs, backends.

Covers the unified API's three guarantees:

* handle arithmetic compiles to graphs whose *functional* execution is
  bit-identical to hand-wiring the low-level ``Evaluator``;
* static depth/noise accounting tracks the measured budget decay;
* one program object runs through both executors — LocalBackend
  decrypts the right plaintext, SimulatedBackend prices the same graph
  on the serving runtime / multi-shard cluster and reports per-request
  latency (the acceptance demo of the facade).
"""

import numpy as np
import pytest

from repro.api import (
    LocalBackend,
    OpKind,
    Session,
    SimulatedBackend,
    sum_slots,
)
from repro.cluster.report import ClusterReport
from repro.cluster.routing import TenantAffinityRouter
from repro.errors import EncodingError, NoiseBudgetExhausted, ParameterError
from repro.fv.evaluator import Evaluator
from repro.fv.galois import GaloisEngine
from repro.params import mini
from repro.system.server import CostModel
from repro.system.workloads import Job, JobKind, merge_streams


@pytest.fixture(scope="module")
def batch_session():
    return Session(mini(t=65537), seed=31)


@pytest.fixture(scope="module")
def bit_session():
    return Session(mini(), seed=32)


class TestSession:
    def test_auto_encoder_picks_batch_when_possible(self, batch_session):
        assert batch_session.encoder_kind == "batch"

    def test_auto_encoder_falls_back_to_coeff(self, bit_session):
        assert bit_session.encoder_kind == "coeff"   # t=2 cannot batch

    def test_forced_batch_encoder_rejects_bad_modulus(self):
        with pytest.raises((ParameterError, EncodingError)):
            Session(mini(), encoder="batch")

    def test_unknown_encoder_rejected(self):
        with pytest.raises(ParameterError):
            Session(mini(), encoder="nope")

    def test_encrypt_decrypt_round_trip(self, batch_session):
        values = [5, 10, 20, 40]
        handle = batch_session.encrypt(values)
        assert np.array_equal(batch_session.decrypt(handle, size=4),
                              values)

    def test_scalar_encoding_broadcasts(self, batch_session):
        handle = batch_session.encrypt([2, 3])
        scaled = batch_session.decrypt(handle * 7, size=2)
        assert scaled.tolist() == [14, 21]

    def test_integer_encoder_session(self):
        session = Session(mini(t=65537), seed=33, encoder="integer")
        h = session.encrypt(19)
        assert session.decrypt(h * session.encrypt(3)) == 57

    def test_from_parts_adopts_context_and_keys(self, batch_session):
        adopted = Session.from_parts(batch_session.context,
                                     batch_session.keys)
        h = adopted.encrypt([9])
        assert int(batch_session.decrypt(h.ciphertext)[0]) == 9

    def test_mixed_session_arithmetic_rejected(self, batch_session):
        other = Session(mini(t=65537), seed=99)
        with pytest.raises(ParameterError):
            batch_session.encrypt([1]) + other.encrypt([1])


class TestHandleAlgebra:
    def test_add_sub_neg(self, batch_session):
        a = batch_session.encrypt([10, 20])
        b = batch_session.encrypt([3, 4])
        assert batch_session.decrypt(a + b, 2).tolist() == [13, 24]
        assert batch_session.decrypt(a - b, 2).tolist() == [7, 16]
        assert batch_session.decrypt(-b, 2).tolist() == [
            65537 - 3, 65537 - 4]

    def test_plain_operand_spellings(self, batch_session):
        a = batch_session.encrypt([10, 20])
        assert batch_session.decrypt(a + 5, 2).tolist() == [15, 25]
        assert batch_session.decrypt(5 + a, 2).tolist() == [15, 25]
        assert batch_session.decrypt(a - 5, 2).tolist() == [5, 15]
        assert batch_session.decrypt(25 - a, 2).tolist() == [15, 5]
        assert batch_session.decrypt(3 * a, 2).tolist() == [30, 60]

    def test_depth_accounting(self, batch_session):
        a = batch_session.encrypt([2])
        b = batch_session.encrypt([3])
        assert a.depth == 0
        assert (a + b).depth == 0
        assert (a * 5).depth == 0          # plaintext mult is depth-free
        assert (a * b).depth == 1
        assert ((a * b) * (a * b)).depth == 2
        assert ((a * b) * a).depth == 2

    def test_rotate_and_sum_slots(self, batch_session):
        values = list(range(1, 9))
        h = batch_session.encrypt(values)
        rotated = batch_session.decrypt(h.rotate(1), 8)
        assert rotated[0] == 2              # slot row rotated left by one
        total = batch_session.decrypt(sum_slots(h), 1)
        assert total[0] == sum(values)


class TestHEProgram:
    def test_compile_forms(self, batch_session):
        a = batch_session.encrypt([1])
        single = batch_session.compile(a * a)
        assert list(single.outputs) == ["out"]
        named = batch_session.compile({"sq": a * a, "id": a})
        assert set(named.outputs) == {"sq", "id"}
        listed = batch_session.compile([a, a * a])
        assert list(listed.outputs) == ["out0", "out1"]

    def test_shared_subexpression_counted_once(self, batch_session):
        a = batch_session.encrypt([2])
        b = batch_session.encrypt([3])
        prod = a * b
        program = batch_session.compile(prod * prod)
        assert program.op_counts()[OpKind.MULTIPLY] == 2

    def test_static_noise_check_rejects_too_deep(self):
        # mini(t=65537) supports worst-case depth 3; depth 5 must fail
        # the static check at compile time.
        session = Session(mini(t=65537), seed=40)
        h = session.encrypt([1])
        for _ in range(5):
            h = h * h
        with pytest.raises(NoiseBudgetExhausted):
            session.compile(h)
        # ... and compile(check=False) defers to the measured verify.
        program = session.compile(h, check=False)
        assert program.depth == 5

    def test_depth_accounting_matches_measured_decay(self):
        """Satellite: static depth matches noise_budget_bits decay on
        mini() — each level costs a consistent bite of the budget and
        the analytic worst case stays below the measurement."""
        session = Session(mini(), seed=41)
        h = session.encrypt([1, 1])
        budgets = [session.noise_budget_bits(h)]
        while h.depth < 4:
            h = h * h
            budgets.append(session.noise_budget_bits(h))
        assert h.depth == 4
        drops = [budgets[i] - budgets[i + 1] for i in range(len(budgets) - 1)]
        assert all(drop > 0 for drop in drops)
        # Per-level cost is roughly constant (mult-dominated): each
        # subsequent level within 3x of the previous.
        for before, after in zip(drops[1:], drops[2:], strict=False):
            assert after < 3 * before
        # The static worst case must be conservative: lower budget than
        # measured, but still positive at depth 4.
        static = session.compile(h).static_noise_bits()["out"]
        assert 0 < static < budgets[-1]

    def test_local_backend_matches_hand_wired_evaluator(self):
        """Satellite: LocalBackend and a hand-wired Evaluator produce
        identical ciphertexts (not just equal decryptions)."""
        session = Session(mini(t=65537), seed=42)
        a = session.encrypt([7, 8, 9])
        b = session.encrypt([1, 2, 3])
        c = session.encrypt([4, 5, 6])
        program = session.compile({"out": a * b + c,
                                   "rot": (a * b).rotate(2)})
        result = LocalBackend(session).run(program)

        evaluator = Evaluator(session.context)
        engine = GaloisEngine(session.context)
        prod = evaluator.multiply(a.ciphertext, b.ciphertext,
                                  session.keys.relin)
        expected_out = session.context.add(prod, c.ciphertext)
        expected_rot = engine.rotate(prod, 2,
                                     {2: session.rotation_key(2)})
        for label, expected in (("out", expected_out),
                                ("rot", expected_rot)):
            got = result[label].ciphertext
            for got_part, want_part in zip(got.parts, expected.parts, strict=True):
                assert np.array_equal(got_part.residues,
                                      want_part.residues)

    def test_local_backend_caches_shared_nodes(self, batch_session):
        a = batch_session.encrypt([2])
        b = batch_session.encrypt([5])
        prod = a * b
        batch_session.decrypt(prod)          # materialises prod
        assert prod.is_materialized
        follow_up = prod + a
        assert int(batch_session.decrypt(follow_up)[0]) == 12


class TestLowering:
    def test_footprints_follow_residency_model(self, batch_session):
        a = batch_session.encrypt([1])
        b = batch_session.encrypt([2])
        c = batch_session.encrypt([3])
        program = batch_session.compile(a * b + c)
        ops = program.lower()
        assert [op.kind for op in ops] == [JobKind.MULT, JobKind.ADD]
        mult, add = ops
        assert mult.polys_in == 4            # two fresh 2-part operands
        assert mult.polys_out == 0           # intermediate stays resident
        assert add.polys_in == 2             # one fresh operand (c)
        assert add.polys_out == 2            # the program output

    def test_input_upload_charged_once(self, batch_session):
        """An INPUT consumed by several ops is uploaded exactly once."""
        h = batch_session.encrypt([3])
        square = batch_session.compile(h * h).lower()
        assert square[0].polys_in == 2       # one ciphertext, one upload
        reused = batch_session.compile(h * h + h).lower()
        assert sum(op.polys_in for op in reused) == 2

    def test_zero_burst_train_pays_no_setup(self):
        from repro.serve.batching import BatchPolicy, DmaBatcher
        from repro.serve.schedulers import QueueEntry

        cost = CostModel(mini())
        batcher = DmaBatcher(cost, BatchPolicy(max_jobs=4))
        entries = [
            QueueEntry(job=Job(index=i, kind=JobKind.ADD, polys_in=0,
                               polys_out=0), cost_seconds=0.0, seq=i)
            for i in range(2)
        ]
        computes = 2 * cost.add_compute_seconds()
        assert batcher.service_seconds(entries) == pytest.approx(computes)

    def test_sum_slots_expands_to_rotation_rounds(self, batch_session):
        h = batch_session.encrypt([1])
        ops = batch_session.compile(sum_slots(h)).lower()
        n = batch_session.params.n
        rounds = (n // 2).bit_length()       # log2(n/2) rotations + conj
        assert len(ops) == 2 * rounds
        assert sum(op.kind is JobKind.ROTATE for op in ops) == rounds

    def test_default_jobs_price_like_table1(self):
        cost = CostModel(mini())
        plain = cost.job_seconds(JobKind.MULT)
        assert cost.job_seconds_of(Job(index=0, kind=JobKind.MULT)) == \
            pytest.approx(plain)

    def test_per_op_kinds_are_priced_sensibly(self):
        cost = CostModel(mini())
        rotate = cost.rotate_compute_seconds()
        assert 0 < cost.add_compute_seconds() < rotate
        assert rotate < cost.mult_compute_seconds()
        assert 0 < cost.mul_plain_compute_seconds() < \
            cost.mult_compute_seconds()

    def test_resident_operands_cost_less(self):
        cost = CostModel(mini())
        fresh = Job(index=0, kind=JobKind.MULT, polys_in=4, polys_out=2)
        resident = Job(index=1, kind=JobKind.MULT, polys_in=0,
                       polys_out=0)
        assert cost.job_seconds_of(resident) < cost.job_seconds_of(fresh)

    def test_merge_streams_preserves_program_fields(self):
        jobs = [Job(index=0, kind=JobKind.ROTATE, arrival_seconds=0.5,
                    polys_in=0, polys_out=2, request=7)]
        merged = merge_streams(jobs, [Job(index=0, kind=JobKind.ADD)])
        rotated = [j for j in merged if j.kind is JobKind.ROTATE][0]
        assert rotated.polys_out == 2 and rotated.request == 7


class TestSimulatedBackend:
    @pytest.fixture(scope="class")
    def session(self):
        return Session(mini(t=65537), seed=50)

    @pytest.fixture(scope="class")
    def dot_program(self, session):
        a = session.encrypt([1, 2, 3, 4])
        b = session.encrypt([5, 6, 7, 8])
        return session.compile(sum_slots(a * b), name="dot")

    def test_over_runtime_resolves_futures(self, session, dot_program):
        backend = SimulatedBackend.over_runtime(session.params)
        run = backend.run(dot_program, requests=10)
        assert len(run.futures) == 10
        assert all(f.succeeded for f in run.futures)
        assert len(run.report.results) == 10 * len(dot_program.lower())
        assert run.latency_summary().p99 >= run.latency_summary().p50 > 0

    def test_failed_future_raises_on_result(self, session, dot_program):
        backend = SimulatedBackend.over_runtime(session.params)
        run = backend.run(dot_program, requests=1)
        future = run.futures[0]
        assert future.result() == future.latency_seconds
        future.rejected_ops = future.num_ops
        future.completed_ops = 0
        with pytest.raises(RuntimeError):
            future.result()

    def test_backend_is_reusable(self, session, dot_program):
        backend = SimulatedBackend.over_runtime(session.params)
        first = backend.run(dot_program, requests=3)
        second = backend.run(dot_program, requests=3)
        assert len(first.completed) == len(second.completed) == 3

    def test_acceptance_same_program_both_executors(self, session,
                                                    dot_program):
        """The facade's acceptance criterion: one HEProgram object runs
        functionally (correct decryption) and through a multi-shard
        cluster (per-request simulated latency)."""
        # Executor 1: functional. The dot product of [1..4] x [5..8].
        result = LocalBackend(session).run(dot_program)
        assert int(result.decrypt("out")[0]) == 5 + 12 + 21 + 32
        assert result.noise_budget_bits("out") > 0

        # Executor 2: the same object over a 3-shard cluster.
        backend = SimulatedBackend.over_cluster(
            session.params, 3, router_factory=TenantAffinityRouter)
        run = backend.run(dot_program, requests=60,
                          rate_per_second=400.0, num_tenants=12, seed=2)
        assert run.program is dot_program
        assert isinstance(run.report, ClusterReport)
        assert run.report.num_shards == 3
        assert len(run.completed) == 60
        summary = run.latency_summary()
        assert 0 < summary.p50 <= summary.p95 <= summary.p99
        # Tenant-affinity routing must actually spread the requests.
        busy_shards = sum(
            1 for rep in run.report.shard_reports if rep.results)
        assert busy_shards > 1
        assert run.requests_per_second() > 0
