"""Smoke tests: every example script must run to completion.

The examples are part of the public deliverable; these tests execute
them as real subprocesses (the way a user would) and check both the exit
status and a few landmark lines of their output.
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout}\n{result.stderr}"
    )
    return result.stdout


class TestExamples:
    def test_quickstart_mini(self):
        output = run_example("quickstart.py", "--params", "mini")
        assert "depth 4" in output
        assert "noise budget" in output

    def test_hw_simulation_demo(self):
        output = run_example("hw_simulation_demo.py")
        assert "bit-identical to software evaluator: True" in output
        assert "Mult total" in output
        assert "paper" in output

    def test_smart_grid_forecasting(self):
        output = run_example("smart_grid_forecasting.py")
        assert "match the plaintext reference" in output

    def test_encrypted_search(self):
        output = run_example("encrypted_search.py")
        assert output.count("OK") >= 3
        assert "depth" in output
        # The acceptance demo: the same HEProgram also reports simulated
        # per-request latency from the multi-shard cluster.
        assert "same HEProgram on a 4-shard cluster" in output
        assert "per-request latency p50" in output

    def test_design_space_exploration(self):
        output = run_example("design_space_exploration.py")
        assert "paper fast coprocessor" in output
        assert "slow coprocessor" in output

    def test_encrypted_sorting(self):
        output = run_example("encrypted_sorting.py")
        assert output.count("OK") >= 4
        assert "WRONG" not in output
