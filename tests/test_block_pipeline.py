"""Tests for the block-level pipeline recurrence (paper Sec. V-B2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HardwareModelError
from repro.hw.block_pipeline import (
    pipeline_total_cycles,
    simulate_block_pipeline,
)


class TestSimulation:
    def test_single_coefficient_traverses_fill(self):
        finish = simulate_block_pipeline(1, (6, 7, 7))
        assert finish[0] == [6, 13, 20]

    def test_steady_state_rate_is_bottleneck(self):
        finish = simulate_block_pipeline(10, (6, 7, 7, 7, 7))
        ends = [row[-1] for row in finish]
        gaps = [b - a for a, b in zip(ends, ends[1:], strict=False)]
        # After the fill, one result every 7 cycles.
        assert all(gap == 7 for gap in gaps[2:])

    def test_data_dependencies_respected(self):
        finish = simulate_block_pipeline(5, (3, 9, 2))
        for row in finish:
            assert row[0] < row[1] < row[2]

    def test_structural_hazards_respected(self):
        """A block never accepts faster than its initiation interval."""
        finish = simulate_block_pipeline(6, (4, 4), intervals=(4, 4))
        starts_block0 = [row[0] - 4 for row in finish]
        gaps = [b - a for a, b in zip(starts_block0, starts_block0[1:], strict=False)]
        assert all(gap >= 4 for gap in gaps)

    def test_rejects_empty(self):
        with pytest.raises(HardwareModelError):
            simulate_block_pipeline(0, (1,))

    def test_rejects_mismatched_intervals(self):
        with pytest.raises(HardwareModelError):
            simulate_block_pipeline(1, (1, 2), intervals=(1,))


class TestClosedForm:
    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(1, 50),
        st.lists(st.integers(1, 12), min_size=1, max_size=6),
    )
    def test_closed_form_equals_simulation(self, count, latencies):
        latencies = tuple(latencies)
        finish = simulate_block_pipeline(count, latencies)
        assert finish[-1][-1] == pipeline_total_cycles(count, latencies)

    def test_paper_lift_chain(self):
        """The Fig. 6 chain at the paper's size: 2048 coefficients per
        core through (6,7,7,7,7) = 34 fill + 2047 x 7 steady state."""
        total = pipeline_total_cycles(2048, (6, 7, 7, 7, 7))
        assert total == 34 + 2047 * 7

    def test_scale_chain_close_to_lift(self):
        """Fig. 9 vs Fig. 6: same bottleneck, only the fill differs —
        the mechanism behind the near-equal Table II rows."""
        lift = pipeline_total_cycles(2048, (6, 7, 7, 7, 7))
        scale = pipeline_total_cycles(2048, (7, 7, 6, 7, 6, 7, 7, 7, 7))
        assert 0 < scale - lift < 40
