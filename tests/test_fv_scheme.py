"""Tests for the FV scheme: samplers, encoders, keygen, encrypt/decrypt,
additive operations, and the textbook cross-check (paper Sec. II-B)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError, ParameterError
from repro.fv.encoder import BatchEncoder, IntegerEncoder, Plaintext
from repro.fv.reference import TextbookFv
from repro.fv.sampler import (
    discrete_gaussian,
    uniform_mod,
    uniform_rns_rows,
    uniform_ternary,
)
from repro.fv.scheme import FvContext
from repro.params import mini


class TestSamplers:
    def test_ternary_range(self, rng):
        samples = uniform_ternary(rng, 10_000)
        assert set(np.unique(samples)) <= {-1, 0, 1}

    def test_ternary_roughly_uniform(self, rng):
        samples = uniform_ternary(rng, 30_000)
        for value in (-1, 0, 1):
            assert 0.30 < np.mean(samples == value) < 0.37

    def test_gaussian_std(self, rng):
        sigma = 102.0
        samples = discrete_gaussian(rng, 100_000, sigma)
        assert abs(samples.std() - sigma) / sigma < 0.03
        assert abs(samples.mean()) < 2.0

    def test_gaussian_tail_cut(self, rng):
        sigma = 10.0
        samples = discrete_gaussian(rng, 100_000, sigma)
        assert np.abs(samples).max() <= 10 * sigma + 1

    def test_gaussian_rejects_bad_sigma(self, rng):
        with pytest.raises(ParameterError):
            discrete_gaussian(rng, 10, 0.0)

    def test_uniform_mod_range(self, rng):
        samples = uniform_mod(rng, 10_000, 97)
        assert samples.min() >= 0 and samples.max() < 97

    def test_uniform_rns_rows_shape(self, rng, toy_params):
        rows = uniform_rns_rows(rng, toy_params.n, toy_params.q_primes)
        assert rows.shape == (toy_params.k_q, toy_params.n)
        for row, prime in zip(rows, toy_params.q_primes, strict=True):
            assert row.max() < prime

    def test_determinism(self):
        a = uniform_ternary(np.random.default_rng(5), 100)
        b = uniform_ternary(np.random.default_rng(5), 100)
        assert np.array_equal(a, b)


class TestPlaintext:
    def test_reduction(self):
        plain = Plaintext(np.array([5, -1, 2]), 2)
        assert plain.coeffs.tolist() == [1, 1, 0]

    def test_from_list_pads(self):
        plain = Plaintext.from_list([1, 1], 8, 2)
        assert plain.coeffs.tolist() == [1, 1, 0, 0, 0, 0, 0, 0]

    def test_from_list_rejects_overflow(self):
        with pytest.raises(EncodingError):
            Plaintext.from_list([1] * 9, 8, 2)

    def test_equality(self):
        a = Plaintext.from_list([1], 4, 2)
        b = Plaintext.from_list([1], 4, 2)
        assert a == b
        assert a != Plaintext.from_list([0], 4, 2)


class TestIntegerEncoder:
    @pytest.fixture(scope="class")
    def encoder(self):
        return IntegerEncoder(mini(t=65537), base=2)

    def test_roundtrip_positive(self, encoder):
        for value in (0, 1, 7, 255, 12345):
            assert encoder.decode(encoder.encode(value)) == value

    def test_roundtrip_negative(self, encoder):
        for value in (-1, -9, -4096):
            assert encoder.decode(encoder.encode(value)) == value

    @given(st.integers(-10**6, 10**6))
    def test_roundtrip_property(self, value):
        encoder = IntegerEncoder(mini(t=65537), base=2)
        assert encoder.decode(encoder.encode(value)) == value

    def test_base3(self):
        encoder = IntegerEncoder(mini(t=65537), base=3)
        assert encoder.decode(encoder.encode(1000)) == 1000

    def test_rejects_tiny_base(self):
        with pytest.raises(ParameterError):
            IntegerEncoder(mini(t=65537), base=1)


class TestBatchEncoder:
    @pytest.fixture(scope="class")
    def encoder(self):
        return BatchEncoder(mini(t=65537))

    def test_roundtrip(self, encoder, rng):
        values = rng.integers(0, 65537, encoder.slot_count)
        decoded = encoder.decode(encoder.encode(values))
        assert np.array_equal(decoded, values)

    def test_partial_fill(self, encoder):
        decoded = encoder.decode(encoder.encode([1, 2, 3]))
        assert decoded[:3].tolist() == [1, 2, 3]
        assert np.all(decoded[3:] == 0)

    def test_slotwise_add_structure(self, encoder):
        """encode(a) + encode(b) decodes to slot-wise a + b."""
        a = np.arange(encoder.slot_count) % 65537
        b = (np.arange(encoder.slot_count) * 3) % 65537
        summed = Plaintext(
            (encoder.encode(a).coeffs + encoder.encode(b).coeffs) % 65537,
            65537,
        )
        assert np.array_equal(encoder.decode(summed), (a + b) % 65537)

    def test_rejects_unfriendly_modulus(self):
        with pytest.raises(ParameterError):
            BatchEncoder(mini(t=257))  # 256 not divisible by 2n = 512

    def test_rejects_too_many_values(self, encoder):
        with pytest.raises(EncodingError):
            encoder.encode(np.zeros(encoder.slot_count + 1))


class TestEncryptDecrypt:
    def test_roundtrip(self, toy_context, toy_keys, rng):
        params = toy_context.params
        plain = Plaintext(rng.integers(0, params.t, params.n), params.t)
        ct = toy_context.encrypt(plain, toy_keys.public)
        assert toy_context.decrypt(ct, toy_keys.secret) == plain

    def test_fresh_noise_is_small(self, toy_context, toy_keys):
        params = toy_context.params
        plain = Plaintext.zero(params.n, params.t)
        ct = toy_context.encrypt(plain, toy_keys.public)
        _, noise = toy_context.decrypt_with_noise(ct, toy_keys.secret)
        # Fresh noise ~ 2*n*sigma; far below the q/(2t) threshold.
        assert 0 < noise < params.q // (2 * params.t) // 2**40

    def test_distinct_randomness(self, toy_context, toy_keys):
        params = toy_context.params
        plain = Plaintext.zero(params.n, params.t)
        ct1 = toy_context.encrypt(plain, toy_keys.public)
        ct2 = toy_context.encrypt(plain, toy_keys.public)
        assert not np.array_equal(ct1.c0.residues, ct2.c0.residues)

    def test_wrong_plaintext_ring_rejected(self, toy_context, toy_keys):
        bad = Plaintext.zero(toy_context.params.n * 2, toy_context.params.t)
        with pytest.raises(ParameterError):
            toy_context.encrypt(bad, toy_keys.public)

    def test_add_homomorphism(self, toy_context, toy_keys, rng):
        params = toy_context.params
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        b = Plaintext(rng.integers(0, params.t, params.n), params.t)
        ct = toy_context.add(
            toy_context.encrypt(a, toy_keys.public),
            toy_context.encrypt(b, toy_keys.public),
        )
        expected = Plaintext((a.coeffs + b.coeffs) % params.t, params.t)
        assert toy_context.decrypt(ct, toy_keys.secret) == expected

    def test_sub_homomorphism(self, toy_context, toy_keys, rng):
        params = toy_context.params
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        b = Plaintext(rng.integers(0, params.t, params.n), params.t)
        ct = toy_context.sub(
            toy_context.encrypt(a, toy_keys.public),
            toy_context.encrypt(b, toy_keys.public),
        )
        expected = Plaintext((a.coeffs - b.coeffs) % params.t, params.t)
        assert toy_context.decrypt(ct, toy_keys.secret) == expected

    def test_negate(self, toy_context, toy_keys, rng):
        params = toy_context.params
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        ct = toy_context.negate(toy_context.encrypt(a, toy_keys.public))
        expected = Plaintext((-a.coeffs) % params.t, params.t)
        assert toy_context.decrypt(ct, toy_keys.secret) == expected

    def test_add_plain(self, toy_context, toy_keys, rng):
        params = toy_context.params
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        b = Plaintext(rng.integers(0, params.t, params.n), params.t)
        ct = toy_context.add_plain(
            toy_context.encrypt(a, toy_keys.public), b
        )
        expected = Plaintext((a.coeffs + b.coeffs) % params.t, params.t)
        assert toy_context.decrypt(ct, toy_keys.secret) == expected

    def test_mul_plain(self, toy_context, toy_keys):
        params = toy_context.params
        a = Plaintext.from_list([1, 1], params.n, params.t)
        b = Plaintext.from_list([0, 1], params.n, params.t)  # times x
        ct = toy_context.mul_plain(
            toy_context.encrypt(a, toy_keys.public), b
        )
        decrypted = toy_context.decrypt(ct, toy_keys.secret)
        assert decrypted.coeffs[:3].tolist() == [0, 1, 1]

    def test_size_mismatch_rejected(self, toy_context, toy_keys, rng):
        params = toy_context.params
        a = Plaintext.zero(params.n, params.t)
        ct = toy_context.encrypt(a, toy_keys.public)
        from repro.fv.ciphertext import Ciphertext
        three = Ciphertext((ct.c0, ct.c1, ct.c0), params)
        with pytest.raises(ParameterError):
            toy_context.add(ct, three)


class TestTextbookCrossCheck:
    """Bit-level agreement between the RNS path and exact big-int FV."""

    def test_encrypt_bit_exact(self, toy_context, toy_keys, rng):
        params = toy_context.params
        textbook = TextbookFv(params)
        plain = Plaintext(rng.integers(0, params.t, params.n), params.t)
        u = uniform_ternary(rng, params.n)
        e1 = discrete_gaussian(rng, params.n, params.sigma)
        e2 = discrete_gaussian(rng, params.n, params.sigma)
        rns_ct = toy_context.encrypt_with(plain, toy_keys.public, u, e1, e2)
        p0 = textbook.poly_from_rns(toy_keys.public.p0)
        p1 = textbook.poly_from_rns(toy_keys.public.p1)
        c0, c1 = textbook.encrypt_with(plain, p0, p1, u, e1, e2)
        assert list(c0.coeffs) == rns_ct.c0.to_int_coeffs()
        assert list(c1.coeffs) == rns_ct.c1.to_int_coeffs()

    def test_decrypt_agreement(self, toy_context, toy_keys, rng):
        params = toy_context.params
        textbook = TextbookFv(params)
        plain = Plaintext(rng.integers(0, params.t, params.n), params.t)
        ct = toy_context.encrypt(plain, toy_keys.public)
        s_poly = textbook.poly_from_rns(toy_keys.secret.rns)
        tb_plain = textbook.decrypt(textbook.ciphertext_from_rns(ct), s_poly)
        assert tb_plain == toy_context.decrypt(ct, toy_keys.secret)

    def test_public_key_relation(self, toy_context, toy_keys):
        """p0 + p1*s must equal -e (small)."""
        textbook = TextbookFv(toy_context.params)
        s = textbook.poly_from_rns(toy_keys.secret.rns)
        p0 = textbook.poly_from_rns(toy_keys.public.p0)
        p1 = textbook.poly_from_rns(toy_keys.public.p1)
        residue = p0 + p1 * s
        sigma = toy_context.params.sigma
        assert residue.infinity_norm() < 20 * sigma + 20

    def test_secret_key_is_ternary(self, toy_keys):
        assert set(np.unique(toy_keys.secret.coeffs)) <= {-1, 0, 1}


class TestDeterminism:
    def test_same_seed_same_keys(self, toy_params):
        ctx_a = FvContext(toy_params, seed=7)
        ctx_b = FvContext(toy_params, seed=7)
        keys_a = ctx_a.keygen()
        keys_b = ctx_b.keygen()
        assert np.array_equal(keys_a.secret.coeffs, keys_b.secret.coeffs)
        assert np.array_equal(keys_a.public.p0.residues,
                              keys_b.public.p0.residues)

    def test_different_seed_different_keys(self, toy_params):
        keys_a = FvContext(toy_params, seed=7).keygen()
        keys_b = FvContext(toy_params, seed=8).keygen()
        assert not np.array_equal(keys_a.secret.coeffs,
                                  keys_b.secret.coeffs)
