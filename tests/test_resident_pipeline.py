"""End-to-end NTT residency: encrypt, wire format, cross-request cache.

The invariants of the resident pipeline PR:

* resident encrypt is the *same* encryption: for identical randomness
  it converts bit-for-bit to the legacy ciphertext, decrypts to the
  same plaintext, and measures the same noise;
* the versioned NTT-domain wire format round-trips resident operands
  without an inverse transform, rejects a payload whose domain flag
  was tampered with, and still loads version-1 (coefficient) files;
* a serialized-resident operand reused across two programs performs
  **zero** coefficient-domain round-trips (the acceptance criterion),
  proved with exact transform-count telemetry;
* both executors' cross-request resident-operand caches are bounded,
  hit on reuse, and (for the simulated backend) price cache hits as
  zero-transfer in the lowered job stream.
"""

import json
import struct
from pathlib import Path

import numpy as np
import pytest

from repro.api import LocalBackend, ResidentOperandCache, Session, SimulatedBackend
from repro.errors import EncodingError, ParameterError
from repro.fv.encoder import Plaintext
from repro.fv.sampler import discrete_gaussian, uniform_ternary
from repro.io import MAGIC, load_ciphertext, save_ciphertext
from repro.params import mini, toy


def _rewrite_header(path: Path, out: Path, mutate) -> None:
    """Load a wire file, apply ``mutate`` to its JSON header, rewrite."""
    raw = path.read_bytes()
    (header_len,) = struct.unpack("<I", raw[8:12])
    header = json.loads(raw[12:12 + header_len])
    mutate(header)
    header_bytes = json.dumps(header, sort_keys=True).encode()
    out.write_bytes(MAGIC + struct.pack("<I", len(header_bytes))
                    + header_bytes + raw[12 + header_len:])


class TestResidentEncrypt:
    def test_resident_equals_legacy_bit_for_bit(self):
        params = mini()
        session = Session(params, seed=3)
        context, keys = session.context, session.keys
        plain = Plaintext.from_list([1, 0, 1, 1], params.n, params.t)
        rng = np.random.default_rng(11)
        u = uniform_ternary(rng, params.n)
        e1 = discrete_gaussian(rng, params.n, params.sigma)
        e2 = discrete_gaussian(rng, params.n, params.sigma)
        legacy = context.encrypt_with(plain, keys.public, u, e1, e2)
        resident = context.encrypt_with(plain, keys.public, u, e1, e2,
                                        resident=True)
        assert resident.ntt_resident and resident.domain == "ntt"
        assert legacy.domain == "coeff"
        back = context.to_coeff_ct(resident)
        for lp, rp in zip(legacy.parts, back.parts, strict=True):
            assert np.array_equal(lp.residues, rp.residues)

    def test_resident_decrypts_identically_same_noise(self):
        params = mini()
        session = Session(params, seed=5)
        context, keys = session.context, session.keys
        plain = Plaintext.from_list([1, 1, 0, 1], params.n, params.t)
        rng = np.random.default_rng(13)
        u = uniform_ternary(rng, params.n)
        e1 = discrete_gaussian(rng, params.n, params.sigma)
        e2 = discrete_gaussian(rng, params.n, params.sigma)
        legacy = context.encrypt_with(plain, keys.public, u, e1, e2)
        resident = context.encrypt_with(plain, keys.public, u, e1, e2,
                                        resident=True)
        m1, n1 = context.decrypt_with_noise(legacy, keys.secret)
        m2, n2 = context.decrypt_with_noise(resident, keys.secret)
        assert np.array_equal(m1.coeffs, m2.coeffs)
        assert n1 == n2

    def test_resident_encrypt_performs_no_inverse_transforms(self):
        from repro.nttmath.batch import transform_counts

        params = mini()
        session = Session(params, seed=7)
        before = transform_counts()
        session.context.encrypt(session.encode(5), session.keys.public,
                                resident=True)
        after = transform_counts()
        assert after["inverse_rows"] == before["inverse_rows"]
        assert after["forward_calls"] == before["forward_calls"] + 1


class TestNttWireFormat:
    def test_resident_roundtrip_preserves_domain_and_bits(self, tmp_path):
        params = mini(t=257)
        session = Session(params, seed=9)
        handle = session.encrypt([4, 5, 6], resident=True)
        ct = handle.node.cached
        path = tmp_path / "resident.ct"
        session.save_ciphertext(path, handle)
        restored = load_ciphertext(path, params)
        assert restored.ntt_resident
        for a, b in zip(ct.parts, restored.parts, strict=True):
            assert np.array_equal(a.residues, b.residues)
        assert list(session.decrypt(session.wrap(restored), size=3)) == \
            [4, 5, 6]

    def test_coefficient_roundtrip_is_version_2(self, tmp_path):
        params = mini(t=257)
        session = Session(params, seed=11)
        ct = session.encrypt([7, 8]).ciphertext
        path = tmp_path / "coeff.ct"
        save_ciphertext(path, ct)
        raw = path.read_bytes()
        (header_len,) = struct.unpack("<I", raw[8:12])
        header = json.loads(raw[12:12 + header_len])
        assert header["version"] == 2
        assert header["domain"] == "coeff"
        restored = load_ciphertext(path, params)
        assert restored.domain == "coeff"

    def test_mislabelled_domain_is_rejected(self, tmp_path):
        params = mini(t=257)
        session = Session(params, seed=13)
        ct = session.encrypt([1, 2]).ciphertext
        path = tmp_path / "coeff.ct"
        save_ciphertext(path, ct)
        evil = tmp_path / "mislabelled.ct"
        _rewrite_header(path, evil,
                        lambda h: h.__setitem__("domain", "ntt"))
        with pytest.raises(EncodingError, match="mislabelled|digest"):
            load_ciphertext(evil, params)

    def test_unknown_domain_and_future_version_rejected(self, tmp_path):
        params = mini(t=257)
        session = Session(params, seed=15)
        path = tmp_path / "base.ct"
        save_ciphertext(path, session.encrypt([3]).ciphertext)
        weird = tmp_path / "weird.ct"
        _rewrite_header(path, weird,
                        lambda h: h.__setitem__("domain", "spectral"))
        with pytest.raises(EncodingError, match="domain"):
            load_ciphertext(weird, params)
        future = tmp_path / "future.ct"
        _rewrite_header(path, future,
                        lambda h: h.__setitem__("version", 99))
        with pytest.raises(EncodingError, match="version"):
            load_ciphertext(future, params)

    def test_version_1_files_still_load_as_coefficients(self, tmp_path):
        params = mini(t=257)
        session = Session(params, seed=17)
        path = tmp_path / "v2.ct"
        ct = session.encrypt([9, 9]).ciphertext
        save_ciphertext(path, ct)
        v1 = tmp_path / "v1.ct"

        def strip(header):
            for key in ("version", "domain", "digest"):
                header.pop(key)

        _rewrite_header(path, v1, strip)
        restored = load_ciphertext(v1, params)
        assert restored.domain == "coeff"
        for a, b in zip(ct.parts, restored.parts, strict=True):
            assert np.array_equal(a.residues, b.residues)

    def test_mixed_domain_ciphertext_refuses_the_wire(self):
        from repro.fv.ciphertext import Ciphertext

        params = mini(t=257)
        session = Session(params, seed=19)
        ct = session.encrypt([1]).ciphertext
        mixed = Ciphertext((ct.c0, ct.c1.to_ntt()), params)
        assert mixed.domain == "mixed"
        with pytest.raises(ParameterError, match="mixed"):
            mixed.to_wire_bytes()


class TestZeroRoundTripAcrossPrograms:
    def test_serialized_resident_operand_never_leaves_ntt_domain(
            self, tmp_path):
        """The acceptance criterion: a serialized-resident operand
        reused across two programs performs zero coefficient-domain
        round-trips. Transform telemetry is exact: each run transforms
        only its fresh plaintext constant (k_q rows forward), never the
        operand (no forward: it arrived resident; no inverse: outputs
        are emitted resident)."""
        params = mini(t=257)
        session = Session(params, seed=21)
        k = params.k_q
        source = session.encrypt([1, 2, 3, 4], resident=True)
        path = tmp_path / "operand.ct"
        session.save_ciphertext(path, source)
        operand = session.load_ciphertext(path)
        assert operand.node.cached.ntt_resident
        # verify=False: the assertion is about *execution*
        # transform economy; the verify phase's noise probe has
        # its own traced transforms.
        backend = LocalBackend(session, resident_outputs=True,
                               verify=False)
        first = backend.run(session.compile(operand * 3, name="p1",
                                            check=False))
        counts1 = dict(backend.last_transform_counts)
        second = backend.run(session.compile(operand * 5, name="p2",
                                             check=False))
        counts2 = dict(backend.last_transform_counts)
        for counts in (counts1, counts2):
            assert counts["forward_rows"] == k, counts
            assert counts["inverse_rows"] == 0, counts
        assert list(first.decrypt("out", size=4)) == [3, 6, 9, 12]
        assert list(second.decrypt("out", size=4)) == [5, 10, 15, 20]

    def test_lazy_resident_handle_saves_in_ntt_domain(self, tmp_path):
        """Regression: save_ciphertext materialises lazy handles
        through a resident-emitting executor, so a resident expression
        chain reaches the wire without the default output boundary's
        inverse transform."""
        params = mini(t=257)
        session = Session(params, seed=33)
        lazy = session.encrypt([6, 7], resident=True) * 3
        path = tmp_path / "lazy.ct"
        session.save_ciphertext(path, lazy)
        restored = load_ciphertext(path, params)
        assert restored.ntt_resident
        assert list(session.decrypt(session.wrap(restored), size=2)) == \
            [18, 21]

    def test_resident_outputs_serialise_without_conversion(self, tmp_path):
        params = mini(t=257)
        session = Session(params, seed=23)
        backend = LocalBackend(session, resident_outputs=True)
        h = session.encrypt([2, 4], resident=True)
        result = backend.run(session.compile(h * 2, name="emit",
                                             check=False))
        out_ct = result.ciphertext("out")
        assert out_ct.ntt_resident
        path = tmp_path / "reply.ct"
        save_ciphertext(path, out_ct)
        restored = load_ciphertext(path, params)
        assert restored.ntt_resident
        assert list(session.decrypt(session.wrap(restored), size=2)) == \
            [4, 8]


class _Node:
    """Weak-referenceable stand-in for an ExprNode in cache unit tests."""


class TestLocalResidentCache:
    def test_boundary_converted_output_restores_from_cache(self):
        params = mini(t=257)
        session = Session(params, seed=25)
        k = params.k_q
        # verify=False keeps the transform ledger to execution
        # work only (the verify phase transforms on its own).
        backend = LocalBackend(session, verify=False)
        a = session.encrypt([5, 6, 7, 8], resident=True)
        inter = a * 3
        backend.run(session.compile(inter, name="first", check=False))
        # The boundary converted `inter` to coefficients; its resident
        # form survives in the cache.
        assert backend.telemetry["resident_cache"]["entries"] >= 1
        backend.run(session.compile(inter * 2, name="second",
                                    check=False))
        telemetry = backend.telemetry["resident_cache"]
        assert telemetry["hits"] >= 1
        assert telemetry["last_run_restores"] >= 1
        # Only the new plaintext constant transformed forward — the
        # restored operand did not.
        assert backend.last_transform_counts["forward_rows"] == k

    def test_cache_is_bounded_with_fifo_eviction(self):
        cache = ResidentOperandCache(limit=2)
        nodes = [_Node() for _ in range(3)]
        for node in nodes:
            cache.put(node, node)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert nodes[0] not in cache
        assert nodes[1] in cache and nodes[2] in cache
        stats = cache.stats()
        assert stats["entries"] == 2 and stats["limit"] == 2

    def test_cache_entries_die_with_their_nodes(self):
        """The cache keys nodes weakly: dropping every handle to an
        operand frees its expression graph, and the entry (with its
        pinned ciphertext) disappears via the weakref callback."""
        import gc

        cache = ResidentOperandCache(limit=4)
        node = _Node()
        cache.put(node, "resident-form")
        assert len(cache) == 1
        del node
        gc.collect()
        assert len(cache) == 0

    def test_cache_identity_guard_and_refresh(self):
        cache = ResidentOperandCache(limit=4)
        node = _Node()
        cache.put(node, "first")
        cache.put(node, "second")  # refresh, not a second entry
        assert len(cache) == 1
        assert cache.get(node) == "second"
        assert cache.get(_Node()) is None
        assert cache.misses == 1 and cache.hits == 1
        with pytest.raises(ValueError):
            ResidentOperandCache(limit=0)


class TestSimulatedResidentCache:
    def test_repeat_run_prices_inputs_as_zero_transfer(self):
        params = toy(t=257)
        session = Session(params, seed=27)
        a = session.encrypt([1, 2, 3])
        b = session.encrypt([4, 5, 6])
        program = session.compile(a * b, name="sim", check=False)
        backend = SimulatedBackend.over_runtime(params)
        first = backend.run(program, requests=3)
        second = backend.run(program, requests=3)
        assert first.cache_hits == 0 and first.cache_misses == 2
        assert second.cache_hits == 2 and second.cache_misses == 0
        assert backend.telemetry["resident_cache"]["hits"] == 2
        # Lowered pricing: the cached lowering uploads strictly less.
        cold = program.lower()
        warm = program.lower(resident_inputs=program.inputs)
        assert sum(op.polys_in for op in warm) < \
            sum(op.polys_in for op in cold)
        assert sum(op.cached_inputs for op in warm) == 2
        assert sum(op.cached_inputs for op in cold) == 0

    def test_shared_operand_across_two_programs_hits(self):
        params = toy(t=257)
        session = Session(params, seed=29)
        shared = session.encrypt([7, 7, 7])
        other = session.encrypt([1, 0, 1])
        backend = SimulatedBackend.over_runtime(params)
        run1 = backend.run(session.compile(shared + other, name="one",
                                           check=False), requests=2)
        run2 = backend.run(session.compile(shared * 2, name="two",
                                           check=False), requests=2)
        assert run1.cache_hits == 0
        assert run2.cache_hits == 1  # `shared` is still server-resident
        assert run2.cache_misses == 0

    def test_sum_slots_charges_upload_once_with_cache(self):
        params = toy(t=257)
        session = Session(params, seed=31)
        h = session.encrypt([1, 2, 3, 4])
        program = session.compile(h.sum_slots(), name="reduce",
                                  check=False)
        warm = program.lower(resident_inputs=program.inputs)
        assert sum(op.polys_in for op in warm) == 0
        assert sum(op.cached_inputs for op in warm) == 1


class TestResidentMultiplyLoop:
    """PR 10 acceptance: a Mult-heavy resident program never
    materialises coefficients — proved by the round-trip telemetry —
    and stays bit-identical to the legacy coefficient-domain schedule,
    across serial and threaded executors.
    """

    @pytest.mark.parametrize("executor", [None, ("threads", 4)])
    def test_mult_heavy_program_zero_roundtrips(self, executor):
        from repro.parallel import ExecutionConfig

        params = mini()
        session = Session(params, seed=41)
        a = session.encrypt([1, 2, 3, 4], resident=True)
        b = session.encrypt([5, 6, 7, 8], resident=True)
        c = session.encrypt([2, 2, 2, 2], resident=True)
        d = session.encrypt([3, 1, 3, 1], resident=True)
        program = session.compile((a * b) * (c * d), name="mult-heavy",
                                  check=False)
        config = (ExecutionConfig(mode=executor[0], workers=executor[1])
                  if executor else None)
        backend = LocalBackend(session, verify=False,
                               resident_outputs=True, executor=config)
        result = backend.run(program)
        counts = backend.last_transform_counts
        assert counts["roundtrip_rows"] == 0
        assert counts["roundtrip_calls"] == 0
        assert result.ciphertext("out").ntt_resident

        # Decrypt-equal to the eager coefficient-domain schedule run
        # over the *same* input ciphertexts (their resident forms are
        # exact conversions, so the legacy pipeline computes the same
        # product).
        legacy = LocalBackend(session, verify=False, ntt_resident=False)
        reference = legacy.run(session.compile(
            (a * b) * (c * d), name="mult-heavy-legacy", check=False
        ))
        got = np.asarray(session.decrypt(result.handle("out")))
        want = np.asarray(session.decrypt(reference.handle("out")))
        assert np.array_equal(got, want)

    def test_resident_inputs_consumed_without_conversion(self):
        params = mini()
        session = Session(params, seed=43)
        a = session.encrypt([9, 8, 7], resident=True)
        b = session.encrypt([1, 2, 3], resident=True)
        program = session.compile(a * b, name="one-mult", check=False)
        backend = LocalBackend(session, verify=False)
        backend.run(program)
        counts = backend.last_transform_counts
        assert counts["roundtrip_rows"] == 0
        assert counts["roundtrip_calls"] == 0
