"""The optimiser pass stack: rewrites, equivalence, and pricing.

Three layers of guarantees:

* **pass units** — each rewrite does exactly what it claims on a
  small hand-built graph (canonical rotation steps, CSE merges,
  ladder folding, lazy relinearisation, hoist groups);
* **golden model** — randomly generated DAGs decrypt identically
  optimised and unoptimised on the functional backend, and the stack
  is idempotent (a second run is a fixed point);
* **pricing** — the acceptance bar: on the sum-heavy and matmul
  programs the optimiser removes >= 30% of lowered keyswitch ops and
  the simulated serving makespan improves.
"""

import numpy as np
import pytest

from repro.api import LocalBackend, Session, SimulatedBackend
from repro.api.program import OpKind, sum_slots_rounds
from repro.apps.matmul import EncryptedMatmul
from repro.optim import optimize_program, program_fingerprint
from repro.params import mini
from repro.serve import CriticalPathScheduler, default_schedulers


@pytest.fixture()
def session():
    return Session(mini(t=65537), seed=31)


def ops_of(program):
    from collections import Counter

    return Counter(node.op for node in program.nodes
                   if node.op is not OpKind.INPUT)


class TestPasses:
    def test_rotation_canonicalize_reduces_steps(self, session):
        x = session.encrypt([1, 2, 3, 4])
        half = session.params.n // 2
        program = session.compile(x.rotate(half + 5) + x.rotate(5))
        optimized, report = optimize_program(program)
        # rotate(half + 5) == rotate(5): CSE merges them after
        # canonicalisation, leaving a doubled single rotation.
        rotations = [node for node in optimized.nodes
                     if node.op is OpKind.ROTATE]
        assert [int(r.payload) for r in rotations] == [5]
        assert report.keyswitches_saved == 1

    def test_rotation_chain_composes(self, session):
        x = session.encrypt([1, 2, 3, 4])
        program = session.compile(x.rotate(3).rotate(5))
        optimized, _ = optimize_program(program)
        rotations = [node for node in optimized.nodes
                     if node.op is OpKind.ROTATE]
        assert [int(r.payload) for r in rotations] == [8]

    def test_cse_merges_identical_subtrees(self, session):
        a = session.encrypt([1, 2, 3, 4])
        b = session.encrypt([5, 6, 7, 8])
        # a*b appears twice as distinct nodes (and MULTIPLY is
        # commutative, so b*a merges too).
        expr = (a * b) + (b * a)
        program = session.compile(expr)
        optimized, report = optimize_program(program)
        assert ops_of(program)[OpKind.MULTIPLY] == 2
        by_pass = {s.name: s for s in report.passes}
        assert by_pass["cse"].rewrites == 1
        assert ops_of(optimized).get(
            OpKind.MULTIPLY, 0) + ops_of(optimized).get(
            OpKind.MULTIPLY_RAW, 0) == 1

    def test_sum_slots_ladders_fold(self, session):
        a = session.encrypt([1, 2, 3, 4])
        b = session.encrypt([5, 6, 7, 8])
        program = session.compile(a.sum_slots() + b.sum_slots())
        optimized, report = optimize_program(program)
        assert ops_of(program)[OpKind.SUM_SLOTS] == 2
        assert ops_of(optimized)[OpKind.SUM_SLOTS] == 1
        rounds = sum_slots_rounds(session.params.n)
        assert report.keyswitches_saved == rounds

    def test_shared_ladder_source_does_not_fold(self, session):
        # sum_slots(x) used twice is one ladder already; folding
        # SS(x)+SS(x) into SS(x+x) would be wrong only if the
        # intermediate were reused elsewhere — here it is, so the
        # pass must keep the shared node intact.
        a = session.encrypt([1, 2, 3, 4])
        total = a.sum_slots()
        keep = total * 2
        program = session.compile({"twice": total + total, "keep": keep})
        optimized, _ = optimize_program(program)
        got = LocalBackend(session).run(optimized)
        assert int(session.decrypt(got.handle("twice"))[0]) == 20
        assert int(session.decrypt(got.handle("keep"))[0]) == 20

    def test_relin_placement_defers_keyswitch(self, session):
        a = session.encrypt([1, 2, 3, 4])
        b = session.encrypt([5, 6, 7, 8])
        c = session.encrypt([1, 1, 2, 2])
        d = session.encrypt([2, 2, 1, 1])
        program = session.compile((a * b) + (c * d))
        optimized, report = optimize_program(program)
        counts = ops_of(optimized)
        assert counts[OpKind.MULTIPLY_RAW] == 2
        assert counts[OpKind.RELINEARIZE] == 1
        assert counts.get(OpKind.MULTIPLY, 0) == 0
        # two mult keyswitches became one relinearisation
        assert report.keyswitches_saved == 1

    def test_multiply_feeding_rotation_stays_relinearised(self, session):
        # A product consumed by a rotation must be a 2-part ciphertext
        # when the keyswitch runs; the pass must not leave it raw.
        a = session.encrypt([1, 2, 3, 4])
        b = session.encrypt([5, 6, 7, 8])
        program = session.compile((a * b).rotate(1))
        optimized, _ = optimize_program(program)
        result = LocalBackend(session).run(optimized)
        expected = session.decrypt((a * b).rotate(1))
        got = session.decrypt(result.handle("out"))
        assert np.array_equal(np.asarray(got), np.asarray(expected))

    def test_hoist_groups_cover_shared_source_rotations(self, session):
        x = session.encrypt(list(range(8)))
        program = session.compile(
            x.rotate(1) + x.rotate(2) + x.rotate(5))
        optimized, report = optimize_program(program)
        assert report.hoist_groups == 1
        (group,) = optimized.hoist_groups
        assert sorted(int(m.payload) for m in group) == [1, 2, 5]
        source = {id(m.args[0]) for m in group}
        assert len(source) == 1

    def test_report_renders_pass_table(self, session):
        a = session.encrypt([1, 2, 3, 4])
        program = session.compile(a.sum_slots() + a.rotate(1))
        _, report = optimize_program(program)
        text = report.render()
        for name in ("canonicalize", "cse", "rotation_fold",
                     "relin_placement", "rotation_hoist"):
            assert name in text
        assert "keyswitches" in text


def random_expr(rng, leaves, depth):
    """A random DAG over the encrypted leaves (shares subtrees).

    Multiplicative depth and ladder count are capped so every program
    stays inside mini's worst-case noise budget — the compile below
    runs ``check=True``, making "both sides decrypt correctly" part of
    the contract rather than "both sides are identically wrong".
    """
    pool = list(leaves)
    sums = 0
    for _ in range(depth):
        op = rng.choice(["add", "sub", "mul", "rotate", "sum", "reuse"])
        a = pool[int(rng.integers(len(pool)))]
        b = pool[int(rng.integers(len(pool)))]
        if op == "mul" and (a.depth >= 1 or b.depth >= 1):
            op = "add"
        if op == "sum":
            if sums >= 2 or a.depth >= 1:
                op = "rotate"
            else:
                sums += 1
        if op == "add":
            pool.append(a + b)
        elif op == "sub":
            pool.append(a - b)
        elif op == "mul":
            pool.append(a * b)
        elif op == "rotate":
            pool.append(a.rotate(int(rng.integers(1, 9))))
        elif op == "sum":
            pool.append(a.sum_slots())
        else:
            pool.append(a + a)
    return pool[-1]


class TestGoldenModel:
    @pytest.mark.parametrize("seed", range(6))
    def test_optimized_program_decrypts_identically(self, seed):
        rng = np.random.default_rng(seed)
        values = [[int(v) for v in rng.integers(0, 50, size=4)]
                  for _ in range(3)]

        def build(session):
            leaves = [session.encrypt(v) for v in values]
            expr = random_expr(np.random.default_rng(seed + 100),
                               leaves, depth=6)
            return session.compile(expr)

        # Fresh sessions/graphs per run: shared nodes carry ciphertext
        # caches, which would make the comparison vacuous.
        plain_session = Session(mini(t=65537), seed=7)
        plain = LocalBackend(plain_session).run(build(plain_session))
        opt_session = Session(mini(t=65537), seed=7)
        optimized, _ = optimize_program(build(opt_session))
        opt = LocalBackend(opt_session).run(optimized)
        assert np.array_equal(
            np.asarray(plain_session.decrypt(plain.handle("out"))),
            np.asarray(opt_session.decrypt(opt.handle("out"))),
        )

    def test_optimize_is_idempotent(self, session):
        a = session.encrypt([1, 2, 3, 4])
        b = session.encrypt([5, 6, 7, 8])
        expr = ((a * b).sum_slots() + (b * a).sum_slots()
                + a.rotate(3) + a.rotate(3 + session.params.n // 2))
        program = session.compile(expr)
        once, _ = optimize_program(program)
        twice, report = optimize_program(once)
        assert program_fingerprint(once) == program_fingerprint(twice)
        assert report.keyswitches_saved == 0

    def test_optimized_noise_never_worse(self, session):
        a = session.encrypt([1, 2, 3, 4])
        b = session.encrypt([5, 6, 7, 8])
        program = session.compile((a * b).sum_slots() + (b * a).sum_slots())
        optimized, _ = optimize_program(program)
        assert optimized.static_noise_bits()["out"] >= \
            program.static_noise_bits()["out"]


class TestBackendIntegration:
    def test_session_compile_optimize_knob(self, session):
        a = session.encrypt([1, 2, 3, 4])
        program = session.compile(a.sum_slots() + a.sum_slots(),
                                  optimize=True)
        assert program.optimization is not None
        assert program.name.endswith("+opt")
        assert ops_of(program)[OpKind.SUM_SLOTS] == 1

    def test_prefetch_generates_each_key_once(self):
        session = Session(mini(t=65537), seed=5)
        x = session.encrypt(list(range(8)))
        program = session.compile(x.rotate(1) + x.rotate(2) + x.rotate(1))
        steps = program.rotation_steps()
        assert steps == [1, 2]
        assert session.prefetch_rotation_keys(steps) == 2
        assert session.prefetch_rotation_keys(steps) == 0

    def test_hoisted_rotations_decrypt_equal(self):
        # Halevi-Shoup hoisting shares one digit decomposition across
        # the group; results are congruent, not bit-identical, so the
        # contract is decrypt equality.
        session = Session(mini(t=65537), seed=5)
        x = session.encrypt(list(range(8)))
        y = session.encrypt([3] * 8)
        expr = x.rotate(1) + y.rotate(1) + x.rotate(2) + x.rotate(5)
        expected = np.asarray(session.decrypt(expr))
        program = session.compile(expr)
        optimized, report = optimize_program(program)
        assert report.hoist_groups == 1
        backend = LocalBackend(session, ntt_resident=True)
        result = backend.run(optimized)
        got = np.asarray(session.decrypt(result.handle("out")))
        assert np.array_equal(got, expected)

    def test_local_backend_runs_raw_and_relin_ops(self, session):
        a = session.encrypt([1, 2, 3, 4])
        b = session.encrypt([5, 6, 7, 8])
        c = session.encrypt([2, 2, 2, 2])
        expected = np.asarray(session.decrypt((a * b) + (a * c)))
        program = session.compile((a * b) + (a * c))
        optimized, _ = optimize_program(program)
        counts = ops_of(optimized)
        assert counts[OpKind.MULTIPLY_RAW] == 2
        for resident in (False, True):
            fresh = LocalBackend(session, ntt_resident=resident)
            # Clear caches so each run actually executes.
            for node in optimized.nodes:
                if node.op is not OpKind.INPUT:
                    node.cached = None
            result = fresh.run(optimized)
            got = np.asarray(session.decrypt(result.handle("out")))
            assert np.array_equal(got, expected)


class TestSimulatedPricing:
    def make_program(self):
        session = Session(mini(t=65537), seed=3)
        handles = [session.encrypt([i + 1] * 8) for i in range(4)]
        total = None
        for h, g in zip(handles[:2], handles[2:]):
            term = (h * g).sum_slots()
            total = term if total is None else total + term
        return session, session.compile(total, name="dots")

    def test_optimize_knob_reduces_keyswitches(self):
        session, program = self.make_program()
        raw = SimulatedBackend.over_runtime(session.params).lower(program)
        opt = SimulatedBackend.over_runtime(
            session.params, optimize=True).lower(program)
        assert opt.optimization is not None
        reduction = 1 - opt.keyswitch_ops() / raw.keyswitch_ops()
        assert reduction >= 0.30
        assert opt.train_seconds() < raw.train_seconds()

    def test_critical_path_and_stamps(self):
        session, program = self.make_program()
        backend = SimulatedBackend.over_runtime(session.params)
        lowered = backend.lower(program)
        critical = lowered.critical_path_seconds()
        assert 0 < critical < lowered.compute_seconds()
        remaining = lowered.remaining_critical_seconds()
        assert len(remaining) == len(lowered.ops)
        assert max(remaining) == pytest.approx(critical)
        jobs, _ = backend.lower_jobs(lowered, requests=2,
                                     rate_per_second=None,
                                     num_tenants=1, seed=0)
        assert all(job.critical_seconds is not None for job in jobs)
        # The last op in topo order has no consumers: it carries only
        # its own compute.
        assert remaining[-1] == pytest.approx(
            lowered.cost.compute_seconds(lowered.ops[-1].kind))

    def test_run_attaches_lowered_program(self):
        session, program = self.make_program()
        backend = SimulatedBackend.over_runtime(session.params,
                                                optimize=True)
        run = backend.run(program, requests=3)
        assert run.lowered is not None
        assert run.lowered.optimization is not None
        assert run.critical_path_seconds > 0
        assert run.program.name.endswith("+opt")
        assert len(run.completed) == 3

    def test_critical_path_scheduler_in_default_set(self):
        names = [s.name for s in default_schedulers()]
        assert "critpath" in names

    def test_critical_path_scheduler_serves_programs(self):
        session, program = self.make_program()
        backend = SimulatedBackend.over_runtime(
            session.params, optimize=True,
            scheduler_factory=CriticalPathScheduler)
        run = backend.run(program, requests=10, rate_per_second=500.0,
                          seed=2)
        assert len(run.completed) == 10
        assert run.latency_summary().p50 > 0


class TestOptimizerCli:
    def test_trace_matmul_prints_report_and_exports(self, tmp_path,
                                                    capsys):
        import json

        from repro.cli import main as cli_main
        from repro.obs import validate_chrome_trace

        assert cli_main(["trace", "matmul", "--out", str(tmp_path),
                         "--requests", "3"]) == 0
        out = capsys.readouterr().out
        assert "optimiser report" in out
        assert "% saved" in out
        assert "MISMATCH" not in out
        for stem in ("matmul_functional", "matmul_simulated"):
            data = json.loads((tmp_path / f"{stem}.json").read_text())
            assert validate_chrome_trace(data)

    def test_trace_no_optimize_skips_report(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["trace", "mult", "--no-optimize",
                         "--out", str(tmp_path), "--requests", "2"]) == 0
        out = capsys.readouterr().out
        assert "optimiser report" not in out


class TestMatmulApp:
    A = [[1, 2, 3, 4], [5, 6, 7, 8]]
    B = [[1, 0], [2, 1], [0, 3], [1, 1]]

    def test_matmul_matches_reference(self):
        reference = EncryptedMatmul.reference(self.A, self.B, 65537)
        for optimize in (False, True):
            # Fresh session/graph per variant so no cached ciphertexts
            # leak between the optimised and unoptimised runs.
            session = Session(mini(t=65537), seed=11)
            matmul = EncryptedMatmul(session, block_slots=2)
            program = matmul.matmul_program(
                matmul.encrypt_rows(self.A), matmul.encrypt_cols(self.B))
            if optimize:
                program, _ = optimize_program(program)
            result = LocalBackend(session).run(program)
            got = [
                [matmul.decrypt_entry(result.handle(f"c{i}_{j}"))
                 for j in range(2)]
                for i in range(2)
            ]
            assert got == reference

    def test_matmul_optimiser_reduction_floor(self):
        session = Session(mini(t=65537), seed=11)
        matmul = EncryptedMatmul(session, block_slots=2)
        program = matmul.matmul_program(matmul.encrypt_rows(self.A),
                                        matmul.encrypt_cols(self.B))
        raw = SimulatedBackend.over_runtime(session.params).lower(program)
        opt = SimulatedBackend.over_runtime(
            session.params, optimize=True).lower(program)
        assert 1 - opt.keyswitch_ops() / raw.keyswitch_ops() >= 0.30

    def test_matmul_validates_inputs(self):
        from repro.errors import ParameterError

        session = Session(mini(t=65537), seed=11)
        matmul = EncryptedMatmul(session)
        with pytest.raises(ParameterError):
            matmul.encrypt_rows([[1, 2], [3]])
        with pytest.raises(ParameterError):
            matmul.encrypt_rows([])
        with pytest.raises(ParameterError):
            EncryptedMatmul(session, block_slots=0)
