"""Tests for the parameter sets (paper Sec. III)."""

import pytest

from repro.errors import ParameterError
from repro.params import (
    ParameterSet,
    hpca19,
    mini,
    table5_parameter_points,
)


class TestPaperParameterSet:
    """The hpca19 set must match every number in paper Sec. III."""

    def test_ring_degree(self, paper_params):
        assert paper_params.n == 4096

    def test_q_is_180_bits_from_six_30bit_primes(self, paper_params):
        assert paper_params.k_q == 6
        assert paper_params.log2_q == 180
        assert all(p.bit_length() == 30 for p in paper_params.q_primes)

    def test_big_q_is_390_bits_from_13_primes(self, paper_params):
        assert paper_params.k_total == 13
        assert paper_params.log2_big_q == 390

    def test_big_q_exceeds_required_372_bits(self, paper_params):
        assert paper_params.tensor_bound_bits() <= 372
        paper_params.validate_tensor_capacity()

    def test_sigma(self, paper_params):
        assert paper_params.sigma == 102.0

    def test_security_estimate_near_80_bits(self, paper_params):
        assert 70 <= paper_params.estimated_security_bits() <= 95

    def test_primes_ntt_friendly(self, paper_params):
        for prime in paper_params.q_primes + paper_params.p_primes:
            assert (prime - 1) % (2 * paper_params.n) == 0

    def test_poly_bytes_matches_table3_transfer(self, paper_params):
        # Table III moves one R_q polynomial = 98,304 bytes.
        assert paper_params.poly_bytes == 98_304

    def test_ciphertext_bytes(self, paper_params):
        assert paper_params.ciphertext_bytes == 2 * 98_304

    def test_delta(self, paper_params):
        assert paper_params.delta == paper_params.q // 2

    def test_deterministic_construction(self):
        assert hpca19().q_primes == hpca19().q_primes


class TestReducedSets:
    def test_toy_is_coherent(self, toy_params):
        toy_params.validate_tensor_capacity()
        assert toy_params.n == 64

    def test_mini_is_coherent(self, mini_params):
        mini_params.validate_tensor_capacity()
        assert mini_params.n == 256

    def test_same_prime_width_as_paper(self, toy_params, mini_params):
        for params in (toy_params, mini_params):
            assert all(
                p.bit_length() == 30
                for p in params.q_primes + params.p_primes
            )

    def test_plaintext_modulus_override(self):
        params = mini(t=65537)
        assert params.t == 65537


class TestValidation:
    def test_rejects_non_power_of_two_degree(self, toy_params):
        with pytest.raises(ParameterError):
            ParameterSet("bad", 100, toy_params.q_primes,
                         toy_params.p_primes)

    def test_rejects_duplicate_primes(self, toy_params):
        with pytest.raises(ParameterError):
            ParameterSet("bad", 64,
                         toy_params.q_primes + toy_params.q_primes[:1],
                         toy_params.p_primes)

    def test_rejects_unfriendly_prime(self, toy_params):
        with pytest.raises(ParameterError):
            ParameterSet("bad", 64, (7,) + toy_params.q_primes[1:],
                         toy_params.p_primes)

    def test_rejects_tiny_plaintext_modulus(self, toy_params):
        with pytest.raises(ParameterError):
            ParameterSet("bad", 64, toy_params.q_primes,
                         toy_params.p_primes, t=1)

    def test_rejects_plaintext_modulus_above_primes(self, toy_params):
        with pytest.raises(ParameterError):
            ParameterSet("bad", 64, toy_params.q_primes,
                         toy_params.p_primes, t=1 << 31)


class TestTable5Points:
    def test_points_match_paper(self):
        assert table5_parameter_points() == [
            (4096, 180), (8192, 360), (16384, 720), (32768, 1440),
        ]
