"""The parallel executor layer: bit-identity, fallbacks, instruments.

The contract under test is the one ISSUE 7 states: parallel execution
may only change the wall clock. Concretely:

* every transform (forward, lazy forward, inverse, scaled inverse,
  broadcast forward) is **bit-identical** across executors and worker
  counts, including the lazy [0, 2q) representatives;
* a full homomorphic multiply — tensor fan-out, keyswitch folding and
  all — produces byte-identical ciphertexts under the thread pool;
* an executor that cannot be built degrades *loudly* to serial: a
  structured :class:`ExecutorFallback`, a counter increment, and an
  unchanged answer;
* dispatches feed the observability plane (dispatch counter, tile
  histogram, utilisation gauge, per-worker tile spans) and the
  timeline exporter spreads tile spans over per-worker lanes that
  still validate.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.nttmath.batch as batch_mod
from repro.fv.encoder import Plaintext
from repro.fv.evaluator import Evaluator
from repro.nttmath.batch import basis_transformer, transform_counts
from repro.nttmath.primes import find_ntt_primes
from repro.obs import Tracer, current_registry, validate_chrome_trace
from repro.obs.timeline import spans_to_chrome
from repro.parallel import (
    EXECUTOR_MODES,
    ExecutionConfig,
    SerialExecutor,
    ThreadPoolExecutor,
    active_executor,
    available_cores,
    build_executor,
    executor_fallbacks,
    in_worker,
    inproc_executor,
    reset_executor_fallbacks,
    split_range,
    use_executor,
)
from repro.parallel.executors import _run_as_worker

N, K, J = 256, 5, 3


@pytest.fixture(autouse=True)
def _force_tiling(monkeypatch):
    """Every transform in this module tiles, whatever its size."""
    monkeypatch.setattr(batch_mod, "PARALLEL_MIN_WORK", 1)
    reset_executor_fallbacks()
    yield
    reset_executor_fallbacks()


@pytest.fixture(scope="module")
def primes():
    return tuple(find_ntt_primes(30, N, K))


@pytest.fixture(scope="module")
def stack(primes):
    rng = np.random.default_rng(2026)
    bt = basis_transformer(primes, N)
    return rng.integers(0, bt.primes_col, size=(J, K, N))


def _all_transforms(primes, stack):
    """Every dispatcher path, as (name, result) pairs."""
    bt = basis_transformer(primes, N)
    constants = tuple(int(p) - 7 - i for i, p in enumerate(primes))
    digits = np.abs(stack[:, 0, :]) % (1 << 29)
    fwd = bt.forward(stack)
    return [
        ("forward", fwd),
        ("forward_lazy", bt.forward(stack, lazy=True)),
        ("inverse", bt.inverse(fwd)),
        ("inverse_scaled", bt.inverse_scaled(fwd, constants)),
        ("forward_broadcast", bt.forward_broadcast(digits)),
        ("forward_broadcast_lazy", bt.forward_broadcast(digits, lazy=True)),
    ]


class TestConfig:
    def test_from_env_defaults_to_serial(self):
        config = ExecutionConfig.from_env({})
        assert config == ExecutionConfig(mode="serial", workers=1)

    def test_from_env_reads_mode_and_workers(self):
        config = ExecutionConfig.from_env(
            {"REPRO_EXECUTOR": " Threads ", "REPRO_WORKERS": "3"})
        assert config == ExecutionConfig(mode="threads", workers=3)

    def test_from_env_sizes_pool_from_affinity(self):
        config = ExecutionConfig.from_env({"REPRO_EXECUTOR": "threads"})
        assert config.workers == min(8, available_cores())

    def test_malformed_workers_flagged_not_raised(self):
        config = ExecutionConfig.from_env(
            {"REPRO_EXECUTOR": "threads", "REPRO_WORKERS": "four"})
        assert config.workers == 0  # rejected later, loudly

    def test_split_range_partitions_exactly(self):
        for size in (1, 5, 17, 64):
            for parts in (1, 2, 3, 8, 100):
                chunks = split_range(size, parts)
                assert chunks[0][0] == 0 and chunks[-1][1] == size
                assert all(a[1] == b[0]
                           for a, b in zip(chunks, chunks[1:], strict=False))
                widths = {hi - lo for lo, hi in chunks}
                assert max(widths) - min(widths) <= 1
                assert len(chunks) == min(parts, size)


class TestBitIdentity:
    """Parallel must equal serial to the last bit, lazy slack included."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_threads_match_serial(self, primes, stack, workers):
        with use_executor("serial"):
            reference = _all_transforms(primes, stack)
        with use_executor("threads", workers):
            assert active_executor().name == "threads"
            parallel = _all_transforms(primes, stack)
        for (name, want), (_, got) in zip(reference, parallel, strict=True):
            assert np.array_equal(want, got), f"{name} diverged"

    def test_transform_counts_identical(self, primes, stack):
        with use_executor("serial"):
            before = transform_counts()
            _all_transforms(primes, stack)
            serial_counts = {
                k: v - before.get(k, 0)
                for k, v in transform_counts().items()
            }
        with use_executor("threads", 2):
            before = transform_counts()
            _all_transforms(primes, stack)
            parallel_counts = {
                k: v - before.get(k, 0)
                for k, v in transform_counts().items()
            }
        assert serial_counts == parallel_counts

    def test_subset_inherits_parent_geometry(self, primes):
        bt = basis_transformer(primes, N)
        sub = bt.subset(1, 4)
        assert sub.geometry is bt.geometry
        assert sub.primes == primes[1:4]
        assert bt.subset(0, K) is bt

    def test_multiply_bit_identical_under_threads(self, toy_context,
                                                  toy_keys, rng):
        params = toy_context.params
        evaluator = Evaluator(toy_context)
        a = toy_context.encrypt(
            Plaintext(rng.integers(0, params.t, params.n), params.t),
            toy_keys.public)
        b = toy_context.encrypt(
            Plaintext(rng.integers(0, params.t, params.n), params.t),
            toy_keys.public)
        with use_executor("serial"):
            want = evaluator.multiply(a, b, toy_keys.relin)
        with use_executor("threads", 3):
            got = evaluator.multiply(a, b, toy_keys.relin)
        assert np.array_equal(want.c0.residues, got.c0.residues)
        assert np.array_equal(want.c1.residues, got.c1.residues)


class TestProcessExecutor:
    def test_forward_inverse_bit_identical(self, primes, stack):
        executor = build_executor(ExecutionConfig("processes", 2))
        if executor.name != "processes":
            reasons = [f.reason for f in executor_fallbacks()]
            pytest.skip(f"process pool unavailable here: {reasons}")
        try:
            bt = basis_transformer(primes, N)
            with use_executor("serial"):
                want_fwd = bt.forward(stack)
                want_inv = bt.inverse(want_fwd)
            with use_executor(executor):
                got_fwd = bt.forward(stack)
                got_inv = bt.inverse(got_fwd)
                # Closure fan-outs must not cross the process boundary.
                assert inproc_executor() is None
            assert np.array_equal(want_fwd, got_fwd)
            assert np.array_equal(want_inv, got_inv)
            assert not executor.shares_address_space
        finally:
            executor.close()

    def test_worker_death_mid_dispatch_degrades_serially(self, primes,
                                                         stack):
        """Killing the pool under a live engine must not lose the
        answer: the dispatch reruns serially, the fallback is recorded,
        and every later dispatch stays on the serial path."""
        executor = build_executor(ExecutionConfig("processes", 2))
        if executor.name != "processes":
            reasons = [f.reason for f in executor_fallbacks()]
            pytest.skip(f"process pool unavailable here: {reasons}")
        try:
            bt = basis_transformer(primes, N)
            with use_executor("serial"):
                want_fwd = bt.forward(stack)
                want_inv = bt.inverse(want_fwd)
            with use_executor(executor):
                assert np.array_equal(bt.forward(stack), want_fwd)
                for proc in executor._procs:
                    proc.terminate()
                    proc.join(timeout=5.0)
                got_fwd = bt.forward(stack)  # dispatch into a dead pool
                got_inv = bt.inverse(got_fwd)  # degraded mode persists
            assert np.array_equal(got_fwd, want_fwd)
            assert np.array_equal(got_inv, want_inv)
            (fallback,) = executor_fallbacks()
            assert fallback.mode == "processes"
            assert "died mid-dispatch" in fallback.reason
        finally:
            executor.close()


class TestFallbacks:
    """Degradation must be loud, structured, and answer-preserving."""

    def test_unknown_mode_goes_serial_with_diagnostics(self):
        executor = build_executor(ExecutionConfig("gpu", 4))
        assert isinstance(executor, SerialExecutor)
        (fallback,) = executor_fallbacks()
        assert fallback.mode == "gpu" and fallback.workers == 4
        assert "unknown executor mode" in fallback.reason
        assert current_registry().value("executor_fallback_total") == 1.0

    def test_bad_worker_count_goes_serial(self):
        executor = build_executor(ExecutionConfig("threads", 0))
        assert isinstance(executor, SerialExecutor)
        (fallback,) = executor_fallbacks()
        assert "REPRO_WORKERS" in fallback.reason

    def test_pool_construction_failure_goes_serial(self, monkeypatch):
        import repro.parallel.shmem as shmem_mod

        def boom(workers):
            raise OSError("no /dev/shm in this sandbox")

        monkeypatch.setattr(shmem_mod, "SharedMemoryProcessExecutor", boom)
        executor = build_executor(ExecutionConfig("processes", 2))
        assert isinstance(executor, SerialExecutor)
        (fallback,) = executor_fallbacks()
        assert fallback.mode == "processes"
        assert "no /dev/shm" in fallback.reason

    def test_results_survive_the_fallback(self, primes, stack):
        bt = basis_transformer(primes, N)
        with use_executor("serial"):
            want = bt.forward(stack)
        with use_executor("definitely-not-an-executor", 4) as executor:
            assert executor.name == "serial"
            got = bt.forward(stack)
        assert np.array_equal(want, got)


class TestScoping:
    def test_modes_catalogue(self):
        assert EXECUTOR_MODES == ("serial", "threads", "processes")

    def test_use_executor_nests_and_restores(self):
        outer = ThreadPoolExecutor(2)
        try:
            with use_executor(outer):
                assert active_executor() is outer
                with use_executor("serial"):
                    assert active_executor().name == "serial"
                assert active_executor() is outer
            assert active_executor() is not outer
        finally:
            outer.close()

    def test_tasks_resolve_serial_inside_workers(self):
        with use_executor("threads", 2) as executor:
            assert active_executor() is executor
            names = executor.map(
                lambda _: (in_worker(), active_executor().name), range(4))
        assert names == [(True, "serial")] * 4
        assert not in_worker()

    def test_run_as_worker_clears_flag_on_error(self):
        with pytest.raises(ValueError):
            _run_as_worker(lambda: (_ for _ in ()).throw(ValueError()))
        assert not in_worker()

    def test_inproc_executor_requires_shared_address_space(self):
        with use_executor("serial"):
            assert inproc_executor() is None
        with use_executor("threads", 2) as executor:
            assert inproc_executor() is executor


class TestInstrumentsAndSpans:
    def test_dispatch_instruments_recorded(self, primes, stack):
        registry = current_registry()
        bt = basis_transformer(primes, N)
        with use_executor("threads", 2):
            bt.forward(stack)
        assert registry.value("parallel_dispatch_total",
                              executor="threads") >= 1.0
        utilisation = registry.value("parallel_worker_utilisation",
                                     executor="threads")
        assert 0.0 < utilisation <= 1.0
        snapshot = registry.snapshot()
        assert snapshot["parallel_tiles_per_dispatch_count"] >= 1.0

    def test_tile_spans_on_per_worker_lanes(self, primes, stack):
        bt = basis_transformer(primes, N)
        tracer = Tracer()
        with use_executor("threads", 2), tracer.activate(), \
                tracer.span("root", kind="op"):
            bt.forward(stack)
        report = tracer.report()
        tiles = [s for s in report.root.walk() if s.kind == "tile"]
        assert tiles, "tiled dispatch emitted no tile spans"
        assert all(s.attrs["worker"].startswith("repro-w") for s in tiles)
        assert all(s.name == "forward.tile" for s in tiles)
        # Tile spans are scheduling detail, not transform accounting.
        assert "forward.tile" not in report.transform_totals()
        events = spans_to_chrome(report.root, process_name="test")
        validate_chrome_trace(events)
        tile_tids = {e["tid"] for e in events if e.get("cat") == "tile"}
        main_tids = {e["tid"] for e in events
                     if e.get("ph") == "X" and e.get("cat") != "tile"}
        assert tile_tids and not (tile_tids & main_tids)
        lanes = {e["args"]["name"] for e in events
                 if e.get("ph") == "M" and e["name"] == "thread_name"}
        assert any(name.startswith("repro-w") for name in lanes)
