"""Tests for the multi-FPGA shard layer (repro.cluster), the stepping
API it drives, telemetry merging, and the empty-report division edges."""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterReport,
    FpgaCluster,
    LeastOutstandingWorkRouter,
    PowerOfTwoChoicesRouter,
    RoundRobinRouter,
    Router,
    TenantAffinityRouter,
)
from repro.hw.config import HardwareConfig
from repro.params import hpca19
from repro.serve import (
    LatencySummary,
    RuntimeReport,
    ServingRuntime,
    Telemetry,
)
from repro.system.server import CloudServer
from repro.system.workloads import (
    Job,
    JobKind,
    cluster_trace,
    mult_stream,
    poisson_stream,
    saturated_tenant_jobs,
    tenant_name,
    zipf_tenant_rates,
)

PARAMS = hpca19()


@pytest.fixture(scope="module")
def server():
    return CloudServer(PARAMS, HardwareConfig())


def check_cluster_conservation(report, offered_jobs):
    """Every offered job lands in exactly one shard report or rejection."""
    seen = [r.job.index for shard in report.shard_reports
            for r in shard.results]
    seen += [r.job.index for r in report.rejected]
    assert sorted(seen) == sorted(j.index for j in offered_jobs)


class TestSingleShardExactness:
    """Acceptance: a 1-shard cluster reproduces the PR 1 runtime."""

    @pytest.mark.parametrize("jobs", [
        mult_stream(60),
        poisson_stream(500.0, 0.5, seed=9),
        poisson_stream(900.0, 0.4, seed=2),
    ], ids=["saturated", "underload", "overload"])
    def test_reproduces_direct_runtime_exactly(self, server, jobs):
        direct = ServingRuntime.for_server(server).run(jobs)
        cluster = FpgaCluster.homogeneous(PARAMS, 1)
        report = cluster.run(jobs)
        assert report.num_shards == 1
        shard = report.shard_reports[0]
        assert [r.finish_seconds for r in shard.results] == \
            [r.finish_seconds for r in direct.results]
        assert [r.coprocessor for r in shard.results] == \
            [r.coprocessor for r in direct.results]
        assert report.makespan_seconds == direct.makespan_seconds
        assert report.throughput_per_second() == \
            direct.throughput_per_second()
        assert shard.telemetry.latencies == direct.telemetry.latencies

    def test_every_router_degenerates_on_one_shard(self, server):
        jobs = poisson_stream(400.0, 0.3, seed=4)
        direct = ServingRuntime.for_server(server).run(jobs)
        for router in (RoundRobinRouter(), LeastOutstandingWorkRouter(),
                       TenantAffinityRouter(),
                       PowerOfTwoChoicesRouter(seed=3)):
            cluster = FpgaCluster.homogeneous(PARAMS, 1, router=router)
            report = cluster.run(jobs)
            assert report.makespan_seconds == direct.makespan_seconds


class TestScalingAcceptance:
    def test_eight_shards_scale_near_linearly_under_affinity(self):
        """Acceptance: >= 7x one shard, saturated, tenant-affinity."""
        jobs = saturated_tenant_jobs(2048, 1)
        single = FpgaCluster.homogeneous(PARAMS, 1).run(mult_stream(256))
        eight = FpgaCluster.homogeneous(
            PARAMS, 8, router=TenantAffinityRouter()).run(jobs)
        check_cluster_conservation(eight, jobs)
        scale = (eight.throughput_per_second()
                 / single.throughput_per_second())
        assert scale >= 7.0, scale
        # Every board took part.
        assert all(shard.results for shard in eight.shard_reports)

    def test_two_shards_double_throughput_least_work(self):
        jobs = mult_stream(240)
        one = FpgaCluster.homogeneous(PARAMS, 1).run(jobs)
        two = FpgaCluster.homogeneous(
            PARAMS, 2, router=LeastOutstandingWorkRouter()).run(jobs)
        assert two.throughput_per_second() == \
            pytest.approx(2 * one.throughput_per_second(), rel=0.02)

    def test_cluster_capacity_sums_shards(self):
        one = FpgaCluster.homogeneous(PARAMS, 1)
        four = FpgaCluster.homogeneous(PARAMS, 4)
        assert four.capacity_mults_per_second() == \
            pytest.approx(4 * one.capacity_mults_per_second())


class TestRouting:
    def test_round_robin_spreads_evenly(self):
        cluster = FpgaCluster.homogeneous(PARAMS, 4,
                                          router=RoundRobinRouter())
        report = cluster.run(mult_stream(40))
        counts = [len(shard.results) for shard in report.shard_reports]
        assert counts == [10, 10, 10, 10]

    def test_affinity_keeps_tenant_on_one_shard(self):
        jobs = cluster_trace(24, 900.0, 1.0, seed=6)
        cluster = FpgaCluster.homogeneous(PARAMS, 4,
                                          router=TenantAffinityRouter())
        report = cluster.run(jobs)
        check_cluster_conservation(report, jobs)
        homes = {}
        for index, shard in enumerate(report.shard_reports):
            for result in shard.results:
                homes.setdefault(result.job.tenant, set()).add(index)
        assert all(len(shards) == 1 for shards in homes.values())

    def test_affinity_is_consistent_under_scale_out(self):
        """Adding a shard relocates only ~1/N of the tenant population."""
        router = TenantAffinityRouter()
        tenants = [tenant_name(i) for i in range(400)]

        def placement(num_shards):
            cluster = FpgaCluster.homogeneous(PARAMS, num_shards,
                                              router=router)
            fresh = TenantAffinityRouter()
            return {t: fresh.preference_order(t, cluster.shards)[0]
                    for t in tenants}

        four, five = placement(4), placement(5)
        moved = sum(1 for t in tenants if four[t] != five[t])
        # Rendezvous hashing moves ~1/5 of tenants; far below a rehash.
        assert moved / len(tenants) < 0.35
        # Tenants that stay keep their exact shard index.
        for t in tenants:
            if four[t] != five[t]:
                assert five[t] == 4 or four[t] != five[t]

    def test_least_work_prefers_idle_shard(self):
        class FirstThenLeast(Router):
            """Jam shard 0, then defer to least-outstanding-work."""
            def __init__(self):
                self._sent = 0
                self._low = LeastOutstandingWorkRouter()

            def choose(self, job, shards):
                self._sent += 1
                if self._sent <= 4:
                    return 0
                return self._low.choose(job, shards)

        cluster = FpgaCluster.homogeneous(PARAMS, 2,
                                          router=FirstThenLeast())
        report = cluster.run(mult_stream(5))
        # The fifth job must land on the idle shard 1.
        assert report.shard_reports[1].results

    def test_power_of_two_choices_deterministic(self):
        jobs = poisson_stream(1200.0, 0.4, seed=8)
        runs = []
        for _ in range(2):
            cluster = FpgaCluster.homogeneous(
                PARAMS, 4, router=PowerOfTwoChoicesRouter(seed=5))
            report = cluster.run(jobs)
            runs.append([len(s.results) for s in report.shard_reports])
        assert runs[0] == runs[1]

    def test_bounded_affinity_caps_hot_shard_blowup(self):
        """A Zipf-hot tenant swamps pure affinity; bounded load spills."""
        trace = cluster_trace(64, 0.8 * 4 * 415.0, 1.0, skew=1.1, seed=5)
        pure = FpgaCluster.homogeneous(
            PARAMS, 4, router=TenantAffinityRouter()).run(trace)
        bounded = FpgaCluster.homogeneous(
            PARAMS, 4,
            router=TenantAffinityRouter(bounded_load_factor=1.25),
        ).run(trace)
        assert bounded.latency_summary().p99 < pure.latency_summary().p99
        assert bounded.imbalance() < pure.imbalance()

    def test_bad_router_index_raises(self):
        class Broken(Router):
            def choose(self, job, shards):
                return len(shards)

        cluster = FpgaCluster.homogeneous(PARAMS, 2, router=Broken())
        with pytest.raises(ValueError):
            cluster.run(mult_stream(1))

    def test_affinity_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            TenantAffinityRouter(bounded_load_factor=0.5)


class TestBackpressure:
    def test_overflow_reroutes_to_sibling(self):
        """A full primary spills onto the least-loaded accepting board."""
        jobs = saturated_tenant_jobs(4, 24)
        cluster = FpgaCluster.homogeneous(
            PARAMS, 4, router=TenantAffinityRouter(),
            max_backlog_seconds=0.1,
        )
        report = cluster.run(jobs)
        check_cluster_conservation(report, jobs)
        assert report.reroutes > 0

    def test_cluster_rejects_when_every_shard_capped(self):
        jobs = saturated_tenant_jobs(4, 64)
        cluster = FpgaCluster.homogeneous(
            PARAMS, 2, router=RoundRobinRouter(),
            max_backlog_seconds=0.05,
        )
        report = cluster.run(jobs)
        check_cluster_conservation(report, jobs)
        assert report.overflow_rejected
        assert all(r.reason == "backpressure"
                   for r in report.overflow_rejected)
        assert 0.0 < report.rejection_fraction < 1.0

    def test_tenant_admission_rejections_stay_in_shard_reports(self):
        from repro.serve import Tenant, TenantSet

        tenants = TenantSet.of(Tenant("capped", max_queue_depth=2))
        jobs = [Job(index=i, kind=JobKind.MULT, tenant="capped")
                for i in range(40)]
        cluster = FpgaCluster.homogeneous(
            PARAMS, 2, router=TenantAffinityRouter(), tenants=tenants)
        report = cluster.run(jobs)
        check_cluster_conservation(report, jobs)
        shard_rejections = [r for shard in report.shard_reports
                            for r in shard.rejected]
        assert shard_rejections
        assert all(r.reason == "queue-depth" for r in shard_rejections)
        assert not report.overflow_rejected

    def test_single_use(self):
        cluster = FpgaCluster.homogeneous(PARAMS, 2)
        cluster.run(mult_stream(2))
        with pytest.raises(RuntimeError):
            cluster.run(mult_stream(2))


class TestHeterogeneousCluster:
    def test_slow_boards_draw_less_under_least_work(self):
        fast = HardwareConfig()
        slow = replace(fast, butterfly_cores_per_rpau=1)
        cluster = FpgaCluster.heterogeneous(
            PARAMS, [fast, slow], router=LeastOutstandingWorkRouter())
        report = cluster.run(mult_stream(120))
        check_cluster_conservation(report, mult_stream(120))
        done_fast = len(report.shard_reports[0].results)
        done_slow = len(report.shard_reports[1].results)
        assert done_fast > done_slow
        # Both boards finish near-simultaneously: balanced in *time*.
        assert report.imbalance() < 0.1

    def test_heterogeneous_capacity_mixes_configs(self):
        fast = HardwareConfig()
        slow = replace(fast, butterfly_cores_per_rpau=1)
        mixed = FpgaCluster.heterogeneous(PARAMS, [fast, slow])
        twins = FpgaCluster.heterogeneous(PARAMS, [fast, fast])
        assert mixed.capacity_mults_per_second() < \
            twins.capacity_mults_per_second()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FpgaCluster.heterogeneous(PARAMS, [])
        with pytest.raises(ValueError):
            FpgaCluster.homogeneous(PARAMS, 0)
        with pytest.raises(ValueError):
            FpgaCluster([])


class TestEmptyAndIdleEdges:
    """The division-edge satellite: empty shards must aggregate."""

    def test_empty_cluster_run(self):
        report = FpgaCluster.homogeneous(PARAMS, 3).run([])
        assert report.completed == 0
        assert report.offered == 0
        assert report.rejection_fraction == 0.0
        assert report.makespan_seconds == 0.0
        assert report.throughput_per_second() == 0.0
        assert report.per_shard_throughput() == [0.0, 0.0, 0.0]
        assert report.utilization_by_shard() == [0.0, 0.0, 0.0]
        assert report.imbalance() == 0.0
        assert report.latency_summary().count == 0
        assert report.sla_violations == 0

    def test_idle_shards_do_not_crash_aggregation(self):
        """One tenant, four shards: three boards never see a job."""
        jobs = [Job(index=i, kind=JobKind.MULT, tenant="solo")
                for i in range(12)]
        cluster = FpgaCluster.homogeneous(PARAMS, 4,
                                          router=TenantAffinityRouter())
        report = cluster.run(jobs)
        check_cluster_conservation(report, jobs)
        busy = [bool(shard.results) for shard in report.shard_reports]
        assert sum(busy) == 1
        assert report.completed == 12
        assert report.throughput_per_second() > 0
        assert report.imbalance() > 0
        summary = report.latency_summary()
        assert summary.count == 12
        for shard in report.shard_reports:
            if not shard.results:
                assert shard.mean_utilization() == 0.0
                assert shard.latency_summary().count == 0
                assert shard.rejection_fraction == 0.0

    def test_runtime_report_empty_guards(self):
        report = RuntimeReport()
        assert report.rejection_fraction == 0.0
        assert report.mean_utilization() == 0.0
        assert report.utilization() == []
        assert report.latency_summary().p99 == 0.0

    def test_cluster_report_validation(self):
        with pytest.raises(ValueError):
            ClusterReport(shard_names=["a"], shard_reports=[])


class TestTelemetryMerging:
    """Satellite: merged percentiles equal concatenated-sample ones."""

    @settings(max_examples=40, deadline=None)
    @given(
        shards=st.lists(
            st.lists(st.floats(0.0, 10.0, allow_nan=False,
                               allow_infinity=False),
                     min_size=0, max_size=40),
            min_size=1, max_size=5,
        ),
        q=st.sampled_from([50, 95, 99]),
    )
    def test_merged_percentiles_equal_concatenated(self, shards, q):
        from repro.serve import percentile

        parts = []
        for series in shards:
            telemetry = Telemetry(num_coprocessors=2)
            telemetry.record_completion(
                0, 1.0, [("t", lat) for lat in series], 0)
            parts.append(telemetry)
        merged = Telemetry.merged(parts)
        concatenated = [lat for series in shards for lat in series]
        summary = merged.latency_summary()
        assert summary.count == len(concatenated)
        reference = LatencySummary.of(concatenated)
        assert summary.p50 == reference.p50
        assert summary.p95 == reference.p95
        assert summary.p99 == reference.p99
        assert merged.latency_summary("t").count == len(concatenated)
        # The per-quantile helper agrees as well.
        direct = percentile(concatenated, q)
        assert percentile(merged.latencies, q) == direct

    @settings(max_examples=20, deadline=None)
    @given(violations=st.lists(st.integers(0, 9), min_size=1,
                               max_size=6))
    def test_merged_counters_sum(self, violations):
        parts = []
        for count in violations:
            telemetry = Telemetry(num_coprocessors=1)
            telemetry.record_completion(0, 0.5, [("x", 0.1)] * count,
                                        count)
            telemetry.record_dispatch(0, max(count, 1))
            parts.append(telemetry)
        merged = Telemetry.merged(parts)
        assert merged.sla_violations == sum(violations)
        assert merged.num_coprocessors == len(violations)
        assert len(merged.busy_seconds) == len(violations)
        assert sum(merged.dispatch_count) == len(violations)

    def test_merged_of_nothing_is_empty(self):
        merged = Telemetry.merged([])
        assert merged.num_coprocessors == 0
        assert merged.latency_summary().count == 0
        assert merged.max_queue_depth == 0
        assert merged.mean_queue_depth() == 0.0
        assert merged.mean_batch_size() == 0.0

    def test_merged_with_zero_sample_parts(self):
        """Idle shards contribute capacity but no samples."""
        empty = Telemetry(num_coprocessors=2)
        busy = Telemetry(num_coprocessors=2)
        busy.record_completion(0, 1.0, [("t", 0.5)], 1)
        merged = Telemetry.merged([empty, busy,
                                   Telemetry(num_coprocessors=1)])
        summary = merged.latency_summary()
        assert summary.count == 1
        assert summary.p50 == 0.5
        assert merged.sla_violations == 1
        assert merged.num_coprocessors == 5


class TestRejectionOnlyAggregation:
    """Shards that only ever rejected must aggregate cleanly."""

    def test_all_timeout_cluster_aggregates(self):
        # Deadlines strictly before the arrivals: every job expires in
        # queue, no shard ever produces a sample.
        jobs = [Job(index=i, kind=JobKind.MULT,
                    arrival_seconds=0.001 * (i + 1),
                    deadline_seconds=0.0005)
                for i in range(10)]
        report = FpgaCluster.homogeneous(PARAMS, 2).run(jobs)
        check_cluster_conservation(report, jobs)
        assert report.completed == 0
        assert len(report.rejected) == 10
        assert all(r.reason == "timeout" for r in report.rejected)
        assert report.availability == 0.0
        assert report.latency_summary().count == 0
        assert report.throughput_per_second() == 0.0
        for shard in report.shard_reports:
            assert shard.latency_summary().p99 == 0.0
            assert shard.mean_utilization() == 0.0

    def test_availability_edge_values(self):
        empty = FpgaCluster.homogeneous(PARAMS, 2).run([])
        assert empty.availability == 1.0  # nothing offered, nothing lost
        served = FpgaCluster.homogeneous(PARAMS, 2).run(
            [Job(index=0, kind=JobKind.MULT)])
        assert served.availability == 1.0
        assert served.failure is None

    def test_merged_queue_depth_trace_sorted(self):
        a = Telemetry(num_coprocessors=1)
        b = Telemetry(num_coprocessors=1)
        a.record_queue_depth(2.0, 3)
        a.record_queue_depth(4.0, 1)
        b.record_queue_depth(1.0, 2)
        b.record_queue_depth(3.0, 5)
        merged = Telemetry.merged([a, b])
        times = [t for t, _ in merged.queue_depth_trace]
        assert times == sorted(times)
        assert merged.max_queue_depth == 5

    def test_cluster_summary_matches_shard_concatenation(self, server):
        """End-to-end: cluster latency summary == concatenated shards."""
        jobs = cluster_trace(16, 1200.0, 0.6, seed=11)
        cluster = FpgaCluster.homogeneous(PARAMS, 3,
                                          router=RoundRobinRouter())
        report = cluster.run(jobs)
        concatenated = [lat for shard in report.shard_reports
                        for lat in shard.telemetry.latencies]
        assert report.latency_summary() == \
            LatencySummary.of(concatenated)


class TestSteppingApi:
    def test_run_equals_begin_inject_drain(self, server):
        jobs = poisson_stream(700.0, 0.4, seed=21)
        oneshot = ServingRuntime.for_server(server).run(jobs)
        stepped_runtime = ServingRuntime.for_server(server)
        stepped_runtime.begin()
        for job in jobs:
            stepped_runtime.advance_to(job.arrival_seconds,
                                       inclusive=False)
            stepped_runtime.inject(job)
        stepped = stepped_runtime.drain()
        assert [r.finish_seconds for r in stepped.results] == \
            [r.finish_seconds for r in oneshot.results]

    def test_inject_requires_begin(self, server):
        runtime = ServingRuntime.for_server(server)
        with pytest.raises(RuntimeError):
            runtime.inject(Job(index=0, kind=JobKind.MULT))
        with pytest.raises(RuntimeError):
            runtime.advance_to(1.0)
        with pytest.raises(RuntimeError):
            runtime.drain()

    def test_inject_behind_clock_raises(self, server):
        runtime = ServingRuntime.for_server(server)
        runtime.begin()
        runtime.inject(Job(index=0, kind=JobKind.MULT,
                           arrival_seconds=0.5))
        runtime.advance_to(1.0)
        with pytest.raises(ValueError):
            runtime.inject(Job(index=1, kind=JobKind.MULT,
                               arrival_seconds=0.2))

    def test_outstanding_tracks_pending_and_drains_to_zero(self, server):
        runtime = ServingRuntime.for_server(server)
        runtime.begin()
        assert runtime.outstanding_seconds() == 0.0
        for i in range(6):
            runtime.inject(Job(index=i, kind=JobKind.MULT))
        # Injected but unprocessed arrivals already register as load.
        assert runtime.outstanding_jobs() == 6
        assert runtime.outstanding_seconds() == pytest.approx(
            6 * server.job_seconds(JobKind.MULT))
        assert runtime.drain_estimate_seconds() == pytest.approx(
            3 * server.job_seconds(JobKind.MULT))
        report = runtime.drain()
        assert len(report.results) == 6
        assert runtime.outstanding_seconds() == pytest.approx(0.0)
        assert runtime.outstanding_jobs() == 0

    def test_exclusive_advance_still_moves_the_clock(self, server):
        """Load signals must be measured at the deadline, not at the
        last processed event — a nearly-finished batch is nearly-zero
        outstanding work (the router reads this between arrivals)."""
        runtime = ServingRuntime.for_server(server)
        runtime.begin()
        runtime.inject(Job(index=0, kind=JobKind.MULT))
        service = server.job_seconds(JobKind.MULT)
        runtime.advance_to(0.9 * service, inclusive=False)
        assert runtime.now == pytest.approx(0.9 * service)
        assert runtime.outstanding_seconds() == \
            pytest.approx(0.1 * service)
        # Equal-time arrivals still inject after an exclusive advance.
        runtime.inject(Job(index=1, kind=JobKind.MULT,
                           arrival_seconds=0.9 * service))
        report = runtime.drain()
        assert len(report.results) == 2

    def test_advance_exclusive_defers_deadline_events(self, server):
        runtime = ServingRuntime.for_server(server)
        runtime.begin()
        runtime.inject(Job(index=0, kind=JobKind.MULT,
                           arrival_seconds=1.0))
        runtime.advance_to(1.0, inclusive=False)
        assert runtime.outstanding_jobs() == 1  # still pending
        assert not runtime._report.results
        runtime.advance_to(1.0)
        assert runtime.outstanding_jobs() == 1  # now queued/in flight
        report = runtime.drain()
        assert report.results[0].start_seconds == pytest.approx(1.0)


class TestClusterWorkloads:
    def test_zipf_rates_sum_and_skew(self):
        rates = zipf_tenant_rates(50, 1000.0, skew=1.2)
        assert sum(rates.values()) == pytest.approx(1000.0)
        ordered = [rates[tenant_name(i)] for i in range(50)]
        assert ordered == sorted(ordered, reverse=True)
        uniform = zipf_tenant_rates(10, 100.0, skew=0.0)
        assert all(rate == pytest.approx(10.0)
                   for rate in uniform.values())

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            zipf_tenant_rates(0, 100.0)
        with pytest.raises(ValueError):
            zipf_tenant_rates(5, -1.0)
        with pytest.raises(ValueError):
            zipf_tenant_rates(5, 100.0, skew=-0.1)

    def test_cluster_trace_sorted_and_tagged(self):
        jobs = cluster_trace(12, 600.0, 0.5, seed=3)
        times = [j.arrival_seconds for j in jobs]
        assert times == sorted(times)
        assert [j.index for j in jobs] == list(range(len(jobs)))
        assert len({j.tenant for j in jobs}) > 1

    def test_cluster_trace_add_fraction(self):
        jobs = cluster_trace(8, 2000.0, 0.5, add_fraction=0.5, seed=1)
        adds = sum(1 for j in jobs if j.kind is JobKind.ADD)
        assert 0.3 < adds / len(jobs) < 0.7
        with pytest.raises(ValueError):
            cluster_trace(8, 100.0, 0.5, add_fraction=1.5)

    def test_saturated_tenant_jobs_interleaved(self):
        jobs = saturated_tenant_jobs(3, 2)
        assert [j.tenant for j in jobs] == [
            "t0000", "t0001", "t0002", "t0000", "t0001", "t0002"]
        assert all(j.arrival_seconds == 0.0 for j in jobs)
        with pytest.raises(ValueError):
            saturated_tenant_jobs(0, 1)


class TestClosedLoopCluster:
    """The think-time client model drives the whole cluster too."""

    def test_single_shard_matches_runtime(self, server):
        """Closed loop on a 1-shard cluster == closed loop on the bare
        runtime: same protocol, same clock, same completions."""
        from repro.system.workloads import ClosedLoopClients

        def drive(target):
            clients = ClosedLoopClients(8, 0.02, seed=11)
            return clients.drive(target, duration_seconds=0.5)

        on_runtime = drive(ServingRuntime.for_server(server))
        on_cluster = drive(FpgaCluster.homogeneous(PARAMS, 1))
        assert on_cluster.submitted == on_runtime.submitted
        assert on_cluster.completed == on_runtime.completed
        assert on_cluster.report.makespan_seconds == pytest.approx(
            on_runtime.report.makespan_seconds)

    def test_population_spreads_over_shards(self):
        from repro.system.workloads import ClosedLoopClients

        cluster = FpgaCluster.homogeneous(
            PARAMS, 4, router=TenantAffinityRouter())
        clients = ClosedLoopClients(64, 0.01, num_tenants=32, seed=3)
        result = clients.drive(cluster, duration_seconds=0.5)
        report = result.report
        assert result.completed == result.submitted > 0
        busy = sum(1 for rep in report.shard_reports if rep.results)
        assert busy == 4
        # Self-regulation: a closed population cannot overrun capacity.
        assert report.throughput_per_second() <= \
            cluster.capacity_mults_per_second() * 1.01

    def test_more_boards_serve_more_closed_loop_clients(self):
        from repro.system.workloads import ClosedLoopClients

        done = {}
        for shards in (1, 4):
            cluster = FpgaCluster.homogeneous(
                PARAMS, shards, router=TenantAffinityRouter())
            clients = ClosedLoopClients(256, 0.005, num_tenants=64,
                                        seed=7)
            done[shards] = clients.drive(cluster, 0.5).completed
        assert done[4] > 2 * done[1]
