"""Tests for the polynomial layers (dense, ring, RNS)."""

import numpy as np
import pytest


from repro.errors import ParameterError
from repro.nttmath.ntt import negacyclic_convolution
from repro.poly.dense import IntPoly
from repro.poly.ring import ring_context
from repro.poly.rns_poly import RnsPoly
from repro.rns.basis import basis_for

N = 16
MODULUS = 2 ** 61 - 1  # big modulus: IntPoly must stay exact


def random_intpoly(rng, n=N, modulus=MODULUS):
    return IntPoly(tuple(int(x) for x in rng.integers(0, 2**60, n)), modulus)


class TestIntPoly:
    def test_construction_reduces(self):
        poly = IntPoly((MODULUS + 3, -1), MODULUS)
        assert poly.coeffs == (3, MODULUS - 1)

    def test_rejects_bad_degree(self):
        with pytest.raises(ParameterError):
            IntPoly((1, 2, 3), MODULUS)

    def test_add_sub_roundtrip(self, rng):
        a, b = random_intpoly(rng), random_intpoly(rng)
        assert (a + b) - b == a

    def test_neg(self, rng):
        a = random_intpoly(rng)
        assert (a + (-a)).is_zero()

    def test_mul_matches_convolution(self, rng):
        a, b = random_intpoly(rng), random_intpoly(rng)
        expected = negacyclic_convolution(
            list(a.coeffs), list(b.coeffs), MODULUS
        )
        assert list((a * b).coeffs) == expected

    def test_mul_commutative(self, rng):
        a, b = random_intpoly(rng), random_intpoly(rng)
        assert a * b == b * a

    def test_mul_distributive(self, rng):
        a, b, c = (random_intpoly(rng) for _ in range(3))
        assert a * (b + c) == a * b + a * c

    def test_scalar_mul(self, rng):
        a = random_intpoly(rng)
        assert a.scalar_mul(3) == a + a + a

    def test_centered_bounds(self, rng):
        a = random_intpoly(rng)
        for value in a.centered():
            assert -MODULUS // 2 <= value <= MODULUS // 2

    def test_infinity_norm(self):
        poly = IntPoly((1, MODULUS - 5), MODULUS)
        assert poly.infinity_norm() == 5

    def test_lift_preserves_centered_value(self, rng):
        a = random_intpoly(rng)
        lifted = a.lift_to(MODULUS * 1000)
        assert lifted.centered() == a.centered()

    def test_lift_rejects_smaller_modulus(self, rng):
        with pytest.raises(ParameterError):
            random_intpoly(rng).lift_to(17)

    def test_scale_round_exact_multiples(self):
        # scale by t/q where coefficients are exact multiples: no rounding.
        poly = IntPoly((100, 200, 0, 0), 10**6)
        scaled = poly.scale_round(1, 100, 10**6)
        assert scaled.coeffs[:2] == (1, 2)

    def test_scale_round_uses_centered_rep(self):
        # -100 (stored as modulus-100) should scale to -1, not huge.
        poly = IntPoly((10**6 - 100, 0, 0, 0), 10**6)
        scaled = poly.scale_round(1, 100, 10**6)
        assert scaled.centered()[0] == -1

    def test_mod_switch(self):
        poly = IntPoly((10**6 - 1, 5, 0, 0), 10**6)  # centered: -1, 5
        switched = poly.mod_switch(97)
        assert switched.centered()[0] == -1
        assert switched.coeffs[1] == 5

    def test_associativity(self, rng):
        a, b, c = (random_intpoly(rng, n=8) for _ in range(3))
        assert (a * b) * c == a * (b * c)


class TestRingContext:
    @pytest.fixture(scope="class")
    def ring(self, toy_params):
        return ring_context(toy_params.n, toy_params.q_primes[0])

    def test_cached(self, toy_params):
        assert ring_context(toy_params.n, toy_params.q_primes[0]) is \
            ring_context(toy_params.n, toy_params.q_primes[0])

    def test_add_sub(self, ring, rng):
        a = rng.integers(0, ring.modulus, ring.n)
        b = rng.integers(0, ring.modulus, ring.n)
        assert np.array_equal(ring.sub(ring.add(a, b), b), a)

    def test_neg(self, ring, rng):
        a = rng.integers(0, ring.modulus, ring.n)
        assert np.all(ring.add(a, ring.neg(a)) == 0)

    def test_multiply_matches_schoolbook(self, ring, rng):
        a = rng.integers(0, ring.modulus, ring.n)
        b = rng.integers(0, ring.modulus, ring.n)
        expected = negacyclic_convolution(a.tolist(), b.tolist(),
                                          ring.modulus)
        assert ring.multiply(a, b).tolist() == expected

    def test_ntt_intt_roundtrip(self, ring, rng):
        a = rng.integers(0, ring.modulus, ring.n)
        assert np.array_equal(ring.intt(ring.ntt(a)), a)

    def test_reduce_object_dtype(self, ring):
        big = np.array([10**30] * ring.n, dtype=object)
        reduced = ring.reduce(big)
        assert reduced.dtype == np.int64
        assert reduced[0] == 10**30 % ring.modulus

    def test_reduce_rejects_wrong_length(self, ring):
        with pytest.raises(ParameterError):
            ring.reduce(np.zeros(3))

    def test_centered(self, ring):
        values = np.array([1, ring.modulus - 1] + [0] * (ring.n - 2))
        centered = ring.centered(values)
        assert centered[0] == 1 and centered[1] == -1


class TestRnsPoly:
    @pytest.fixture(scope="class")
    def basis(self, toy_params):
        return basis_for(toy_params.q_primes)

    def test_int_coeff_roundtrip(self, basis, toy_params, rng):
        coeffs = [
            int.from_bytes(rng.bytes(12), "little") % basis.modulus
            for _ in range(toy_params.n)
        ]
        poly = RnsPoly.from_int_coeffs(basis, coeffs)
        assert poly.to_int_coeffs() == coeffs

    def test_centered_roundtrip(self, basis, toy_params):
        coeffs = [basis.modulus - 5] + [0] * (toy_params.n - 1)
        poly = RnsPoly.from_int_coeffs(basis, coeffs)
        assert poly.to_centered_coeffs()[0] == -5

    def test_add_matches_bigint(self, basis, toy_params, rng):
        a_ints = [int(x) for x in rng.integers(0, 2**60, toy_params.n)]
        b_ints = [int(x) for x in rng.integers(0, 2**60, toy_params.n)]
        a = RnsPoly.from_int_coeffs(basis, a_ints)
        b = RnsPoly.from_int_coeffs(basis, b_ints)
        expected = [(x + y) % basis.modulus
                    for x, y in zip(a_ints, b_ints, strict=True)]
        assert (a + b).to_int_coeffs() == expected

    def test_multiply_matches_bigint(self, basis, toy_params, rng):
        a_ints = [int(x) for x in rng.integers(0, 2**50, toy_params.n)]
        b_ints = [int(x) for x in rng.integers(0, 2**50, toy_params.n)]
        a = RnsPoly.from_int_coeffs(basis, a_ints)
        b = RnsPoly.from_int_coeffs(basis, b_ints)
        expected = negacyclic_convolution(a_ints, b_ints, basis.modulus)
        assert a.multiply(b).to_int_coeffs() == expected

    def test_ntt_domain_roundtrip(self, basis, toy_params, rng):
        a = RnsPoly.from_small_coeffs(
            basis, rng.integers(0, 1000, toy_params.n)
        )
        assert np.array_equal(a.to_ntt().to_coeff().residues, a.residues)

    def test_pointwise_requires_ntt_domain(self, basis, toy_params, rng):
        a = RnsPoly.from_small_coeffs(
            basis, rng.integers(0, 1000, toy_params.n)
        )
        with pytest.raises(ParameterError):
            a.pointwise_mul(a)

    def test_domain_mixing_rejected(self, basis, toy_params, rng):
        a = RnsPoly.from_small_coeffs(
            basis, rng.integers(0, 1000, toy_params.n)
        )
        with pytest.raises(ParameterError):
            _ = a + a.to_ntt()

    def test_to_int_requires_coeff_domain(self, basis, toy_params, rng):
        a = RnsPoly.from_small_coeffs(
            basis, rng.integers(0, 1000, toy_params.n)
        )
        with pytest.raises(ParameterError):
            a.to_ntt().to_int_coeffs()

    def test_scalar_mul(self, basis, toy_params):
        ints = [1] * toy_params.n
        a = RnsPoly.from_int_coeffs(basis, ints)
        assert a.scalar_mul(7).to_int_coeffs() == [7] * toy_params.n

    def test_ntt_multiply_consistency(self, basis, toy_params, rng):
        """NTT-domain pointwise product == coefficient-domain multiply."""
        a = RnsPoly.from_small_coeffs(
            basis, rng.integers(0, 1000, toy_params.n)
        )
        b = RnsPoly.from_small_coeffs(
            basis, rng.integers(0, 1000, toy_params.n)
        )
        via_ntt = a.to_ntt().pointwise_mul(b.to_ntt()).to_coeff()
        direct = a.multiply(b)
        assert np.array_equal(via_ntt.residues, direct.residues)
