"""Tests for RNS bases, lift, scale, and decomposition (paper Sec. III-B,
IV-C, IV-D). These validate the exact arithmetic the hardware datapaths
reuse, including the fixed-point quotient estimates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.rns.basis import (
    RECIP_FRACTION_BITS,
    RnsBasis,
    basis_for,
    lift_context,
    scale_context,
)
from repro.rns.decompose import (
    decompose_poly_signed,
    recompose_signed_digits,
    rns_decompose,
    rns_recompose,
    signed_digit_decompose,
)
from repro.rns.lift import (
    hps_quotient,
    lift_hps,
    lift_hps_reference,
    lift_traditional,
)
from repro.rns.scale import scale_hps, scale_traditional
from repro.utils import round_half_away


@pytest.fixture(scope="module")
def q_basis(mini_params):
    return basis_for(mini_params.q_primes)


@pytest.fixture(scope="module")
def full_basis(mini_params):
    return basis_for(mini_params.q_primes + mini_params.p_primes)


class TestRnsBasis:
    def test_constants_satisfy_crt_identity(self, q_basis):
        for star, tilde, prime in zip(q_basis.q_star, q_basis.q_tilde,
                                      q_basis.primes, strict=True):
            assert (star * tilde) % prime == 1
            assert q_basis.modulus == star * prime

    def test_residues_and_reconstruct_roundtrip(self, q_basis, rng):
        for _ in range(50):
            value = int.from_bytes(rng.bytes(16), "little") % q_basis.modulus
            assert q_basis.reconstruct(q_basis.residues_of(value)) == value

    def test_reconstruct_centered(self, q_basis):
        value = q_basis.modulus - 3
        residues = q_basis.residues_of(value)
        assert q_basis.reconstruct_centered(residues) == -3

    def test_reconstruct_coeffs_matrix(self, q_basis, rng):
        values = [int(v) for v in rng.integers(0, 2**60, 20)]
        matrix = q_basis.residues_of_coeffs(values)
        assert q_basis.reconstruct_coeffs(matrix) == values

    def test_wrong_row_count_rejected(self, q_basis):
        with pytest.raises(ParameterError):
            q_basis.reconstruct_coeffs(np.zeros((2, 4), dtype=np.int64))

    def test_reciprocal_precision(self, q_basis):
        """recip_i = round(2^89 / q_i): |recip*q - 2^89| <= q/2."""
        for recip, prime in zip(q_basis.recip, q_basis.primes, strict=True):
            assert abs(recip * prime - (1 << RECIP_FRACTION_BITS)) \
                <= prime // 2

    def test_reciprocal_leading_zeros(self, q_basis):
        """Paper Sec. V-B2: first 29 fractional bits of 1/q_i are zero,
        so the stored reciprocal fits 60 bits."""
        for recip in q_basis.recip:
            assert recip.bit_length() <= 60

    def test_rejects_duplicate_primes(self):
        with pytest.raises(ParameterError):
            RnsBasis((17, 17))

    def test_star_mod_table_shape(self, q_basis, mini_params):
        table = q_basis.star_mod_table(mini_params.p_primes)
        assert table.shape == (mini_params.k_p, mini_params.k_q)


class TestHpsQuotient:
    """The fixed-point v' = round(sum x'_i / q_i) estimate (Fig. 6 Block 3)."""

    def test_limb_split_matches_bigint(self, q_basis, rng):
        k = q_basis.size
        x = rng.integers(0, 2**30 - 1, size=(k, 200)).astype(np.int64)
        x %= q_basis.primes_col
        fast = hps_quotient(q_basis, x)
        half = 1 << (RECIP_FRACTION_BITS - 1)
        for col in range(x.shape[1]):
            total = sum(
                int(x[i, col]) * q_basis.recip[i] for i in range(k)
            )
            expected = (total + half) >> RECIP_FRACTION_BITS
            assert fast[col] == expected

    def test_quotient_range(self, q_basis, rng):
        k = q_basis.size
        x = (rng.integers(0, 2**30, size=(k, 500)) % q_basis.primes_col)
        v = hps_quotient(q_basis, x.astype(np.int64))
        assert np.all(v >= 0) and np.all(v <= k)


class TestLift:
    def test_hps_matches_bigint_reference(self, mini_params, q_basis, rng):
        ctx = lift_context(mini_params.q_primes, mini_params.p_primes)
        values = [
            int.from_bytes(rng.bytes(24), "little") % q_basis.modulus
            for _ in range(300)
        ]
        residues = q_basis.residues_of_coeffs(values)
        assert np.array_equal(lift_hps(ctx, residues),
                              lift_hps_reference(ctx, residues))

    def test_hps_produces_centered_representative(self, mini_params,
                                                  q_basis, rng):
        ctx = lift_context(mini_params.q_primes, mini_params.p_primes)
        values = [
            int.from_bytes(rng.bytes(24), "little") % q_basis.modulus
            for _ in range(300)
        ]
        residues = q_basis.residues_of_coeffs(values)
        out = lift_hps(ctx, residues)
        q = q_basis.modulus
        for col, value in enumerate(values):
            centered = value - q if value > q // 2 else value
            for j, prime in enumerate(mini_params.p_primes):
                assert out[j, col] == centered % prime

    def test_traditional_is_exact_crt(self, mini_params, q_basis, rng):
        ctx = lift_context(mini_params.q_primes, mini_params.p_primes)
        values = [
            int.from_bytes(rng.bytes(24), "little") % q_basis.modulus
            for _ in range(100)
        ]
        residues = q_basis.residues_of_coeffs(values)
        out = lift_traditional(ctx, residues)
        for col, value in enumerate(values):
            for j, prime in enumerate(mini_params.p_primes):
                assert out[j, col] == value % prime

    def test_boundary_values(self, mini_params, q_basis):
        """0, 1, q-1 and the q/2 neighbourhood lift to a representative
        congruent mod q with magnitude at most q/2 + 2.

        Values within ~2^-56 * q of the q/2 boundary may land on either
        side of it: the stored reciprocals are rounded, so the quotient
        estimate can tip over exactly at the boundary. This is the
        approximation the paper calls negligible (Sec. IV-C) — the FV
        noise analysis absorbs a q-multiple shift of this size.
        """
        q = q_basis.modulus
        ctx = lift_context(mini_params.q_primes, mini_params.p_primes)
        values = [0, 1, q - 1, q // 2, q // 2 + 1, q // 2 - 1]
        residues = q_basis.residues_of_coeffs(values)
        out = lift_hps(ctx, residues)
        for col, value in enumerate(values):
            candidates = [value, value - q]
            matched = any(
                all(out[j, col] == cand % prime
                    for j, prime in enumerate(mini_params.p_primes))
                and abs(cand) <= q // 2 + 2
                for cand in candidates
            )
            assert matched, (col, value)

    def test_rejects_wrong_shape(self, mini_params):
        ctx = lift_context(mini_params.q_primes, mini_params.p_primes)
        with pytest.raises(ParameterError):
            lift_hps(ctx, np.zeros((2, 5), dtype=np.int64))

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_hps_congruence_property(self, mini_params, data):
        """For arbitrary residue inputs the lifted value is congruent to
        the input modulo q and bounded by q (HPS centering)."""
        q_basis_local = basis_for(mini_params.q_primes)
        ctx = lift_context(mini_params.q_primes, mini_params.p_primes)
        residues = np.array([
            [data.draw(st.integers(0, int(p) - 1))]
            for p in mini_params.q_primes
        ], dtype=np.int64)
        out = lift_hps(ctx, residues)
        value = q_basis_local.reconstruct(residues[:, 0])
        full = basis_for(mini_params.p_primes)
        lifted = full.reconstruct_centered(out[:, 0])
        assert (lifted - value) % q_basis_local.modulus == 0
        assert abs(lifted) <= q_basis_local.modulus


class TestScale:
    def bound(self, params, q):
        return params.n * (q // 2) ** 2

    def test_hps_matches_exact_rounding(self, mini_params, q_basis,
                                        full_basis, rng):
        ctx = scale_context(mini_params.q_primes, mini_params.p_primes,
                            mini_params.t)
        q = q_basis.modulus
        bound = self.bound(mini_params, q)
        values = [
            int.from_bytes(rng.bytes(40), "little") % (2 * bound) - bound
            for _ in range(300)
        ]
        residues = full_basis.residues_of_coeffs(values)
        out = scale_hps(ctx, residues)
        for col, value in enumerate(values):
            want = round_half_away(mini_params.t * value, q)
            for i, prime in enumerate(mini_params.q_primes):
                assert out[i, col] == want % prime

    def test_traditional_matches_exact_rounding(self, mini_params, q_basis,
                                                full_basis, rng):
        ctx = scale_context(mini_params.q_primes, mini_params.p_primes,
                            mini_params.t)
        q = q_basis.modulus
        bound = self.bound(mini_params, q)
        values = [
            int.from_bytes(rng.bytes(40), "little") % (2 * bound) - bound
            for _ in range(100)
        ]
        residues = full_basis.residues_of_coeffs(values)
        out = scale_traditional(ctx, residues)
        for col, value in enumerate(values):
            want = round_half_away(mini_params.t * value, q)
            for i, prime in enumerate(mini_params.q_primes):
                assert out[i, col] == want % prime

    def test_zero_scales_to_zero(self, mini_params, full_basis):
        ctx = scale_context(mini_params.q_primes, mini_params.p_primes,
                            mini_params.t)
        residues = np.zeros((full_basis.size, 4), dtype=np.int64)
        assert np.all(scale_hps(ctx, residues) == 0)

    def test_multiples_of_q_scale_exactly(self, mini_params, q_basis,
                                          full_basis):
        """t * (k*q) / q = t*k exactly, no rounding ambiguity."""
        ctx = scale_context(mini_params.q_primes, mini_params.p_primes,
                            mini_params.t)
        q = q_basis.modulus
        values = [q, 2 * q, 100 * q, -7 * q]
        residues = full_basis.residues_of_coeffs(values)
        out = scale_hps(ctx, residues)
        for col, value in enumerate(values):
            expected = mini_params.t * (value // q)
            for i, prime in enumerate(mini_params.q_primes):
                assert out[i, col] == expected % prime

    def test_plaintext_moduli(self, mini_params, q_basis, full_basis, rng):
        """The scale pipeline is exact for every supported t."""
        q = q_basis.modulus
        bound = self.bound(mini_params, q)
        values = [
            int.from_bytes(rng.bytes(40), "little") % (2 * bound) - bound
            for _ in range(50)
        ]
        residues = full_basis.residues_of_coeffs(values)
        for t in (2, 3, 16, 257, 65537):
            ctx = scale_context(mini_params.q_primes, mini_params.p_primes,
                                t)
            out = scale_hps(ctx, residues)
            for col, value in enumerate(values):
                want = round_half_away(t * value, q)
                for i, prime in enumerate(mini_params.q_primes):
                    assert out[i, col] == want % prime, (t, col)

    def test_rejects_wrong_shape(self, mini_params):
        ctx = scale_context(mini_params.q_primes, mini_params.p_primes, 2)
        with pytest.raises(ParameterError):
            scale_hps(ctx, np.zeros((3, 5), dtype=np.int64))


class TestSignedDigits:
    def test_paper_toy_example(self):
        """Paper Sec. II-B: 43 and 39 in base 2^4 with signed digits."""
        assert signed_digit_decompose(43, 16, 2) == [-5, 3]
        assert signed_digit_decompose(39, 16, 2) == [7, 2]

    def test_roundtrip(self):
        for value in range(-120, 121):
            digits = signed_digit_decompose(value, 16, 3)
            assert recompose_signed_digits(digits, 16) == value

    def test_digit_bounds(self):
        for value in range(-500, 500, 7):
            for digit in signed_digit_decompose(value, 32, 3):
                assert -16 <= digit < 16

    def test_rejects_overflow(self):
        with pytest.raises(ParameterError):
            signed_digit_decompose(10**6, 16, 2)

    def test_rejects_odd_base(self):
        with pytest.raises(ParameterError):
            signed_digit_decompose(5, 15, 2)

    @given(st.integers(-(2**59 - 2**30), 2**59 - 2**30))
    def test_roundtrip_property(self, value):
        # Two signed base-2^30 digits cover +-(2^59 - 2^30) comfortably.
        digits = signed_digit_decompose(value, 1 << 30, 2)
        assert recompose_signed_digits(digits, 1 << 30) == value
        assert all(-2**29 <= d < 2**29 for d in digits)

    def test_poly_decomposition(self, q_basis):
        q = q_basis.modulus
        coeffs = [5, q - 5, q // 3, 0]
        count = -(-q.bit_length() // 30)
        digit_polys = decompose_poly_signed(coeffs, q, 1 << 30, count)
        assert len(digit_polys) == count
        for idx, coeff in enumerate(coeffs):
            centered = coeff - q if coeff > q // 2 else coeff
            recomposed = recompose_signed_digits(
                [digit_polys[level][idx] for level in range(count)], 1 << 30
            )
            assert recomposed == centered


class TestRnsDecompose:
    def test_recompose_identity(self, q_basis, rng):
        n = 32
        residues = np.stack([
            rng.integers(0, p, n) for p in q_basis.primes
        ]).astype(np.int64)
        digits = rns_decompose(q_basis, residues)
        assert digits.shape == (q_basis.size, q_basis.size, n)
        recomposed = rns_recompose(q_basis, digits)
        assert np.array_equal(recomposed, residues)

    def test_digits_are_small(self, q_basis, rng):
        n = 16
        residues = np.stack([
            rng.integers(0, p, n) for p in q_basis.primes
        ]).astype(np.int64)
        digits = rns_decompose(q_basis, residues)
        assert digits.max() < 1 << 30

    def test_rejects_wrong_shape(self, q_basis):
        with pytest.raises(ParameterError):
            rns_decompose(q_basis, np.zeros((2, 4), dtype=np.int64))
