"""Additional depth: textbook-FV reference internals and open-loop
server scheduling under Poisson arrivals."""

import numpy as np
import pytest

from repro.fv.encoder import Plaintext
from repro.fv.reference import TextbookFv, uniform_mod_big
from repro.nttmath.ntt import negacyclic_convolution
from repro.params import hpca19, toy
from repro.system.server import CloudServer
from repro.system.workloads import JobKind, poisson_stream


class TestTextbookReference:
    @pytest.fixture(scope="class")
    def machinery(self, toy_context, toy_keys):
        textbook = TextbookFv(toy_context.params, seed=5)
        s_poly = textbook.poly_from_rns(toy_keys.secret.rns)
        return textbook, s_poly

    def test_textbook_add(self, machinery, toy_context, toy_keys, rng):
        textbook, s_poly = machinery
        params = toy_context.params
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        b = Plaintext(rng.integers(0, params.t, params.n), params.t)
        ct_a = textbook.ciphertext_from_rns(
            toy_context.encrypt(a, toy_keys.public)
        )
        ct_b = textbook.ciphertext_from_rns(
            toy_context.encrypt(b, toy_keys.public)
        )
        summed = textbook.add(ct_a, ct_b)
        expected = Plaintext((a.coeffs + b.coeffs) % params.t, params.t)
        assert textbook.decrypt(summed, s_poly) == expected

    def test_textbook_digit_relinearisation(self, machinery, toy_context,
                                            toy_keys, rng):
        """The textbook path's own relin (signed base-w WordDecomp)."""
        textbook, s_poly = machinery
        params = toy_context.params
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        b = Plaintext(rng.integers(0, params.t, params.n), params.t)
        ct_a = textbook.ciphertext_from_rns(
            toy_context.encrypt(a, toy_keys.public)
        )
        ct_b = textbook.ciphertext_from_rns(
            toy_context.encrypt(b, toy_keys.public)
        )
        rlk = textbook.relin_keygen(s_poly, base_bits=30)
        product = textbook.multiply(ct_a, ct_b, rlk)
        assert len(product) == 2
        expected = negacyclic_convolution(
            a.coeffs.tolist(), b.coeffs.tolist(), params.t
        )
        assert textbook.decrypt(product, s_poly).coeffs.tolist() \
            == expected

    def test_textbook_mult_chain(self, machinery, toy_context, toy_keys):
        """Two sequential textbook multiplications stay correct."""
        textbook, s_poly = machinery
        params = toy_context.params
        plain = Plaintext.from_list([1, 1], params.n, params.t)
        ct = textbook.ciphertext_from_rns(
            toy_context.encrypt(plain, toy_keys.public)
        )
        rlk = textbook.relin_keygen(s_poly, base_bits=30)
        squared = textbook.multiply(ct, ct, rlk)
        fourth = textbook.multiply(squared, squared, rlk)
        expected = plain.coeffs.tolist()
        for _ in range(2):
            expected = negacyclic_convolution(expected, expected, params.t)
        assert textbook.decrypt(fourth, s_poly).coeffs.tolist() == expected

    def test_uniform_mod_big_range(self, rng):
        modulus = hpca19().q
        values = uniform_mod_big(np.random.default_rng(3), 64, modulus)
        assert all(0 <= v < modulus for v in values)
        # 180-bit values: the high bits must actually vary.
        assert max(values).bit_length() > 170

    def test_textbook_rejects_undersized_q(self):
        from repro.errors import ParameterError
        from repro.params import ParameterSet, toy

        base = toy()
        # A Q that cannot hold the tensor product must be rejected.
        bad = ParameterSet("bad", base.n, base.q_primes,
                           base.p_primes[:1], t=2, sigma=3.2)
        with pytest.raises(ParameterError):
            TextbookFv(bad)


class TestPoissonScheduling:
    def test_poisson_stream_statistics(self):
        jobs = poisson_stream(rate_per_second=100, duration_seconds=10,
                              seed=1)
        assert 800 < len(jobs) < 1200  # ~1000 +- sampling noise
        arrivals = [j.arrival_seconds for j in jobs]
        assert arrivals == sorted(arrivals)
        assert all(0 <= a < 10 for a in arrivals)

    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            poisson_stream(0, 1)
        with pytest.raises(ValueError):
            poisson_stream(10, -1)

    def test_underloaded_server_has_low_latency(self, paper_params):
        """At 25% load, latency stays near the bare service time."""
        server = CloudServer(paper_params)
        capacity = server.mult_throughput_per_second()
        jobs = poisson_stream(capacity * 0.25, 1.0, seed=2)
        report = server.serve(jobs)
        service = server.job_seconds(JobKind.MULT)
        assert report.mean_latency_seconds < 2.5 * service

    def test_overloaded_server_builds_backlog(self, paper_params):
        """At 2x capacity the queue grows and mean latency blows up."""
        server = CloudServer(paper_params)
        capacity = server.mult_throughput_per_second()
        light = server.serve(poisson_stream(capacity * 0.25, 1.0, seed=3))
        heavy = server.serve(poisson_stream(capacity * 2.0, 1.0, seed=3))
        assert heavy.mean_latency_seconds > 5 * light.mean_latency_seconds

    def test_saturated_throughput_caps_at_capacity(self, paper_params):
        server = CloudServer(paper_params)
        capacity = server.mult_throughput_per_second()
        report = server.serve(
            poisson_stream(capacity * 3.0, 1.0, seed=4)
        )
        assert report.throughput_per_second() <= capacity * 1.05


class TestCliRemainingCommands:
    def test_cli_sweep(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["sweep"]) == 0
        output = capsys.readouterr().out
        assert "coprocessor instances" in output
        assert "butterfly cores" in output

    def test_cli_verify(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["verify"]) == 0
        output = capsys.readouterr().out
        assert "PASS" in output
        assert "all configurations bit-exact" in output
