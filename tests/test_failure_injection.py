"""Failure-injection tests: the system must *detect* or *survive* faults
in the documented ways, not silently corrupt results.

Covers: corrupted ciphertexts, wrong keys, schedule sabotage (the BRAM
port checker must catch an intentionally broken access pattern),
datapath overflow guards, and noise-budget exhaustion.
"""

import numpy as np
import pytest

from repro.errors import (
    HardwareModelError,
    MemoryConflictError,
    ParameterError,
)
from repro.fv.ciphertext import Ciphertext
from repro.fv.encoder import Plaintext
from repro.fv.evaluator import Evaluator
from repro.fv.noise import noise_budget_bits
from repro.fv.scheme import FvContext
from repro.hw.bram import PairedPolyMemory
from repro.hw.config import HardwareConfig
from repro.hw.modred import SlidingWindowReducer
from repro.hw.ntt_unit import DualCoreNttUnit
from repro.nttmath.ntt import NegacyclicTransformer
from repro.params import toy
from repro.poly.rns_poly import RnsPoly


class TestCorruptedCiphertexts:
    def test_single_residue_corruption_breaks_decryption(self, toy_context,
                                                         toy_keys):
        """Flipping one residue word must scramble the plaintext — the
        CRT spreads the error across the whole coefficient."""
        params = toy_context.params
        plain = Plaintext.zero(params.n, params.t)
        ct = toy_context.encrypt(plain, toy_keys.public)
        corrupted_rows = ct.c0.residues.copy()
        corrupted_rows[0, 0] = (corrupted_rows[0, 0] + 12345) \
            % params.q_primes[0]
        corrupted = Ciphertext(
            (RnsPoly(toy_context.q_basis, corrupted_rows), ct.c1), params
        )
        _, noise = toy_context.decrypt_with_noise(corrupted,
                                                  toy_keys.secret)
        # The injected error is of magnitude ~q/q_0, way above any noise.
        assert noise > params.q // (4 * params.q_primes[0])

    def test_wrong_secret_key_yields_garbage(self, toy_context, toy_keys):
        params = toy_context.params
        other_keys = FvContext(params, seed=999).keygen()
        plain = Plaintext(
            np.arange(params.n) % params.t, params.t
        )
        ct = toy_context.encrypt(plain, toy_keys.public)
        wrong = toy_context.decrypt(ct, other_keys.secret)
        assert wrong != plain

    def test_mismatched_relin_key_breaks_product(self, toy_context,
                                                 toy_keys):
        """Relinearising with another party's key must not decrypt to the
        correct product."""
        params = toy_context.params
        other_keys = FvContext(params, seed=998).keygen()
        evaluator = Evaluator(toy_context)
        plain = Plaintext.from_list([1, 1], params.n, params.t)
        ct = toy_context.encrypt(plain, toy_keys.public)
        raw = evaluator.multiply_raw(ct, ct)
        relined = evaluator.relinearize(raw, other_keys.relin)
        correct = toy_context.decrypt(raw, toy_keys.secret)
        assert toy_context.decrypt(relined, toy_keys.secret) != correct

    def test_truncated_wire_blob_rejected(self, toy_context, toy_keys):
        params = toy_context.params
        ct = toy_context.encrypt(Plaintext.zero(params.n, params.t),
                                 toy_keys.public)
        with pytest.raises(ParameterError):
            Ciphertext.from_bytes(ct.to_bytes()[: params.poly_bytes // 2],
                                  params, toy_context.q_basis)


class TestScheduleSabotage:
    def test_port_checker_catches_broken_schedule(self):
        """Reading two lower-block words in one cycle — the conflict the
        Fig. 3 scheme exists to prevent — must raise, not corrupt."""
        memory = PairedPolyMemory(64)
        memory.read_word(0, cycle=0)
        with pytest.raises(MemoryConflictError):
            memory.read_word(1, cycle=0)

    def test_memory_corruption_detected_by_equivalence(self, rng):
        """If BRAM contents are tampered mid-transform, the result no
        longer matches the mathematical NTT."""
        n = 64
        prime = toy().q_primes[0]
        unit = DualCoreNttUnit(n, prime, HardwareConfig())
        values = rng.integers(0, prime, n)
        reference = NegacyclicTransformer(n, prime).forward(values)
        # Run normally: matches.
        clean, _ = unit.run_fast(values)
        assert np.array_equal(clean, reference)
        # Sabotage the twiddle ROM of the unit's transformer: detected.
        original = unit.transformer.forward_tables[2].copy()
        unit.transformer.forward_tables[2][0] ^= 1
        try:
            dirty, _ = unit.run_fast(values)
            assert not np.array_equal(dirty, reference)
        finally:
            unit.transformer.forward_tables[2][:] = original

    def test_out_of_range_word_address(self):
        memory = PairedPolyMemory(64)
        with pytest.raises(HardwareModelError):
            memory.read_word(memory.words)


class TestDatapathGuards:
    def test_reducer_rejects_oversized_operand(self):
        reducer = SlidingWindowReducer(toy().q_primes[0])
        with pytest.raises(HardwareModelError):
            reducer.reduce(1 << 62)

    def test_reducer_rejects_negative_operand(self):
        reducer = SlidingWindowReducer(toy().q_primes[0])
        with pytest.raises(HardwareModelError):
            reducer.reduce(-5)

    def test_ntt_unit_rejects_wrong_shape(self):
        unit = DualCoreNttUnit(64, toy().q_primes[0], HardwareConfig())
        with pytest.raises(HardwareModelError):
            unit.run_strict(np.zeros(65, dtype=np.int64))


class TestNoiseExhaustion:
    def test_deep_circuit_eventually_fails_cleanly(self):
        """Past the depth budget the budget hits zero and decryption
        visibly fails — noise failure is detectable, never silent."""
        params = toy()
        context = FvContext(params, seed=404)
        keys = context.keygen()
        evaluator = Evaluator(context)
        plain = Plaintext.from_list([1], params.n, params.t)
        ct = context.encrypt(plain, keys.public)
        failed = False
        for _ in range(12):
            ct = evaluator.multiply(ct, ct, keys.relin)
            budget = noise_budget_bits(context, ct, keys.secret)
            decrypted = context.decrypt(ct, keys.secret)
            correct = (decrypted.coeffs[0] == 1
                       and not decrypted.coeffs[1:].any())
            if not correct:
                # The failure must have been predicted by the budget
                # metric (within its 1-bit resolution) — never a silent
                # surprise while the budget still looked healthy.
                assert budget < 1.0
                failed = True
                break
            assert budget > 0, "correct decryption with negative budget"
        assert failed, "the toy set must exhaust within 12 levels"
