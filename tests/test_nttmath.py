"""Tests for the number-theoretic substrate (primes, NTT, bit reversal)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.nttmath.bitrev import (
    bit_reverse_indices,
    bit_reverse_int,
    bit_reverse_permute,
)
from repro.nttmath.modmath import mod_centered, modinv, modpow
from repro.nttmath.ntt import (
    NegacyclicTransformer,
    intt_iterative,
    negacyclic_convolution,
    ntt_iterative,
    stage_twiddles,
)
from repro.nttmath.primes import (
    find_ntt_primes,
    is_prime,
    primitive_root,
    root_of_unity,
)

PRIME = find_ntt_primes(30, 64, 1)[0]


class TestModMath:
    def test_modpow(self):
        assert modpow(2, 10, 1000) == 24

    def test_modinv(self):
        inverse = modinv(7, PRIME)
        assert (7 * inverse) % PRIME == 1

    def test_modinv_rejects_noncoprime(self):
        with pytest.raises(ValueError):
            modinv(6, 12)

    def test_mod_centered(self):
        assert mod_centered(PRIME - 1, PRIME) == -1
        assert mod_centered(1, PRIME) == 1

    @given(st.integers(1, 10**9))
    def test_modinv_property(self, value):
        if value % PRIME == 0:
            return
        assert (value * modinv(value, PRIME)) % PRIME == 1


class TestPrimes:
    def test_small_primes(self):
        primes = [2, 3, 5, 7, 11, 13, 97, 65537]
        assert all(is_prime(p) for p in primes)

    def test_small_composites(self):
        composites = [0, 1, 4, 9, 91, 561, 65535, 2 ** 31 - 3]
        assert not any(is_prime(c) for c in composites)

    def test_carmichael_numbers_rejected(self):
        # Carmichael numbers fool Fermat tests but not Miller-Rabin.
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_prime(carmichael)

    def test_find_ntt_primes_properties(self):
        primes = find_ntt_primes(30, 4096, 13)
        assert len(set(primes)) == 13
        for p in primes:
            assert p.bit_length() == 30
            assert (p - 1) % 8192 == 0
            assert is_prime(p)

    def test_find_ntt_primes_descending(self):
        primes = find_ntt_primes(30, 4096, 5)
        assert primes == sorted(primes, reverse=True)

    def test_find_ntt_primes_rejects_impossible(self):
        with pytest.raises(ParameterError):
            find_ntt_primes(10, 4096, 1)

    def test_primitive_root(self):
        for p in (5, 7, 13, PRIME):
            g = primitive_root(p)
            # Check order by factor test instead of enumeration for PRIME.
            assert modpow(g, p - 1, p) == 1
            assert modpow(g, (p - 1) // 2, p) != 1

    def test_root_of_unity_order(self):
        for order in (2, 4, 64, 128):
            w = root_of_unity(order, PRIME)
            assert modpow(w, order, PRIME) == 1
            assert modpow(w, order // 2, PRIME) != 1

    def test_root_of_unity_rejects_bad_order(self):
        with pytest.raises(ParameterError):
            root_of_unity(3, PRIME)  # 3 does not divide PRIME - 1


class TestBitReverse:
    def test_bit_reverse_int(self):
        assert bit_reverse_int(0b001, 3) == 0b100
        assert bit_reverse_int(0b110, 3) == 0b011

    def test_involution(self):
        for value in range(64):
            assert bit_reverse_int(bit_reverse_int(value, 6), 6) == value

    def test_indices_are_permutation(self):
        indices = bit_reverse_indices(64)
        assert sorted(indices.tolist()) == list(range(64))

    def test_permute_roundtrip_array(self, rng):
        values = rng.integers(0, 100, 32)
        twice = bit_reverse_permute(bit_reverse_permute(values))
        assert np.array_equal(twice, values)

    def test_permute_list(self):
        assert bit_reverse_permute([0, 1, 2, 3]) == [0, 2, 1, 3]

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ParameterError):
            bit_reverse_permute([1, 2, 3])


class TestIterativeNtt:
    """Paper Alg. 1 reference implementation."""

    def test_roundtrip(self, rng):
        n = 64
        w = root_of_unity(n, PRIME)
        coeffs = rng.integers(0, PRIME, n).tolist()
        assert intt_iterative(ntt_iterative(coeffs, PRIME, w), PRIME, w) \
            == [c % PRIME for c in coeffs]

    def test_constant_polynomial(self):
        n = 16
        w = root_of_unity(n, PRIME)
        # NTT of a constant is that constant in every evaluation point.
        assert ntt_iterative([5] + [0] * (n - 1), PRIME, w) == [5] * n

    def test_linearity(self, rng):
        n = 32
        w = root_of_unity(n, PRIME)
        a = rng.integers(0, PRIME, n).tolist()
        b = rng.integers(0, PRIME, n).tolist()
        sum_transform = ntt_iterative(
            [(x + y) % PRIME for x, y in zip(a, b, strict=True)], PRIME, w
        )
        transform_sum = [
            (x + y) % PRIME
            for x, y in zip(ntt_iterative(a, PRIME, w),
                            ntt_iterative(b, PRIME, w), strict=True)
        ]
        assert sum_transform == transform_sum

    def test_cyclic_convolution_theorem(self, rng):
        n = 16
        w = root_of_unity(n, PRIME)
        a = rng.integers(0, PRIME, n).tolist()
        b = rng.integers(0, PRIME, n).tolist()
        pointwise = [
            (x * y) % PRIME
            for x, y in zip(ntt_iterative(a, PRIME, w),
                            ntt_iterative(b, PRIME, w), strict=True)
        ]
        via_ntt = intt_iterative(pointwise, PRIME, w)
        # Cyclic (not negacyclic) convolution reference.
        direct = [0] * n
        for i, ai in enumerate(a):
            for j, bj in enumerate(b):
                direct[(i + j) % n] = (direct[(i + j) % n] + ai * bj) % PRIME
        assert via_ntt == direct


class TestStageTwiddles:
    def test_table_sizes(self):
        w = root_of_unity(64, PRIME)
        tables = stage_twiddles(64, PRIME, w)
        assert [len(t) for t in tables] == [1, 2, 4, 8, 16, 32]

    def test_first_twiddle_is_one(self):
        w = root_of_unity(64, PRIME)
        for table in stage_twiddles(64, PRIME, w):
            assert table[0] == 1


class TestNegacyclicTransformer:
    @pytest.mark.parametrize("n", [8, 64, 256])
    def test_roundtrip(self, n, rng):
        primes = find_ntt_primes(30, n, 1)
        tr = NegacyclicTransformer(n, primes[0])
        values = rng.integers(0, primes[0], n)
        assert np.array_equal(tr.inverse(tr.forward(values)),
                              values % primes[0])

    def test_multiply_matches_schoolbook(self, rng):
        n = 32
        prime = find_ntt_primes(30, n, 1)[0]
        tr = NegacyclicTransformer(n, prime)
        a = rng.integers(0, prime, n)
        b = rng.integers(0, prime, n)
        assert tr.multiply(a, b).tolist() == negacyclic_convolution(
            a.tolist(), b.tolist(), prime
        )

    def test_negacyclic_wraparound_sign(self):
        # x^(n-1) * x = x^n = -1 in the negacyclic ring.
        n = 8
        prime = find_ntt_primes(30, n, 1)[0]
        tr = NegacyclicTransformer(n, prime)
        a = np.zeros(n, dtype=np.int64)
        a[n - 1] = 1
        b = np.zeros(n, dtype=np.int64)
        b[1] = 1
        product = tr.multiply(a, b)
        assert product[0] == prime - 1
        assert np.all(product[1:] == 0)

    def test_matches_iterative_reference(self, rng):
        n = 64
        prime = PRIME
        tr = NegacyclicTransformer(n, prime)
        values = rng.integers(0, prime, n)
        scaled = [(int(v) * int(p)) % prime
                  for v, p in zip(values, tr.psi_powers, strict=True)]
        reference = ntt_iterative(scaled, prime, tr.omega)
        assert tr.forward(values).tolist() == reference

    def test_rejects_wide_modulus(self):
        with pytest.raises(ParameterError):
            NegacyclicTransformer(64, (1 << 33) + 1)

    def test_rejects_unfriendly_modulus(self):
        with pytest.raises(ParameterError):
            NegacyclicTransformer(64, 97)  # 96 not divisible by 128

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**30 - 1), st.integers(0, 63))
    def test_monomial_products(self, coefficient, degree):
        """Multiplying by x^d rotates with sign flip (property check)."""
        n = 64
        tr = NegacyclicTransformer(n, PRIME)
        a = np.zeros(n, dtype=np.int64)
        a[degree] = coefficient % PRIME
        b = np.zeros(n, dtype=np.int64)
        b[n - 1] = 1
        product = tr.multiply(a, b)
        expected = np.zeros(n, dtype=np.int64)
        target = (degree + n - 1) % n
        sign = 1 if degree + n - 1 < n else -1
        expected[target] = (sign * coefficient) % PRIME
        assert np.array_equal(product, expected)
