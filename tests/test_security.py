"""Tests for the HE-standard security placement module."""

import pytest

from repro.params import hpca19, mini, table5_large, toy
from repro.security import (
    HE_STANDARD_MAX_LOG2_Q,
    assess,
    estimate_security_level,
    max_log2_q,
    meets_security,
)


class TestStandardTable:
    def test_table_is_monotone_in_n(self):
        """Bigger rings tolerate wider moduli at every level."""
        degrees = sorted(HE_STANDARD_MAX_LOG2_Q)
        for level in (128, 192, 256):
            widths = [HE_STANDARD_MAX_LOG2_Q[n][level] for n in degrees]
            assert widths == sorted(widths)

    def test_table_is_monotone_in_level(self):
        """Higher security tolerates narrower moduli at every degree."""
        for row in HE_STANDARD_MAX_LOG2_Q.values():
            assert row[128] > row[192] > row[256]

    def test_max_log2_q_lookup(self):
        assert max_log2_q(4096, 128) == 109
        assert max_log2_q(1000, 128) is None

    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            max_log2_q(4096, 100)


class TestPlacement:
    def test_paper_set_is_below_the_128_bit_line(self):
        """The paper's 180-bit q exceeds the 109-bit cap at n = 4096 —
        consistent with its explicit 80-bit (not 128-bit) target."""
        params = hpca19()
        assert not meets_security(params, 128)
        assessment = assess(params)
        assert not assessment.meets_128
        assert "80-bit" in assessment.notes

    def test_paper_heuristic_near_80_bits(self):
        assessment = assess(hpca19())
        assert 70 <= assessment.classical_bits_estimate <= 95

    def test_large_point_also_80_bit_class(self):
        """Table V doubles n *and* log q, preserving the security level."""
        paper = assess(hpca19()).classical_bits_estimate
        large = assess(table5_large()).classical_bits_estimate
        assert abs(paper - large) < 10

    def test_toy_sets_fail_closed(self):
        """Test-only rings are not tabulated and must report insecure."""
        assert estimate_security_level(toy()) == 0
        assert estimate_security_level(mini()) == 0

    def test_a_128_bit_set_passes(self):
        """A (4096, <=109-bit) set clears the standard's 128-bit line."""
        from repro.params import ParameterSet, _ntt_primes

        primes = _ntt_primes(27, 4096, 5)
        params = ParameterSet("seal_like", 4096, primes[:3], primes[3:],
                              t=2, sigma=3.2)
        assert params.log2_q <= 109
        assert meets_security(params, 128)

    def test_report_renders(self):
        report = assess(hpca19()).report()
        assert "hpca19" in report and "128-bit" in report


class TestCliSecurity:
    def test_cli_security_command(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["security"]) == 0
        output = capsys.readouterr().out
        assert "hpca19" in output

    def test_cli_report_command(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["report"]) == 0
        output = capsys.readouterr().out
        assert len(output) > 50
