"""Tests for the lift/scale units, RPAUs, memory file, and ISA."""

from dataclasses import replace

import numpy as np
import pytest

from repro.errors import CapacityError, HardwareModelError, IsaError
from repro.hw.config import HardwareConfig, slow_coprocessor_config
from repro.hw.isa import Instruction, Opcode, Program
from repro.hw.lift_unit import (
    HpsLiftUnit,
    TraditionalLiftUnit,
)
from repro.hw.memory_file import MemoryFile
from repro.hw.rpau import Rpau, batch_rows, rpau_prime_assignment
from repro.hw.scale_unit import HpsScaleUnit, TraditionalScaleUnit
from repro.rns.basis import basis_for, lift_context, scale_context
from repro.rns.lift import lift_hps, lift_traditional
from repro.rns.scale import scale_hps, scale_traditional

CONFIG = HardwareConfig()


@pytest.fixture(scope="module")
def lift_ctx(mini_params):
    return lift_context(mini_params.q_primes, mini_params.p_primes)


@pytest.fixture(scope="module")
def scale_ctx(mini_params):
    return scale_context(mini_params.q_primes, mini_params.p_primes,
                         mini_params.t)


@pytest.fixture(scope="module")
def q_residues(mini_params, ):
    rng = np.random.default_rng(31)
    basis = basis_for(mini_params.q_primes)
    return np.stack([
        rng.integers(0, p, mini_params.n) for p in basis.primes
    ]).astype(np.int64)


@pytest.fixture(scope="module")
def full_residues(mini_params):
    rng = np.random.default_rng(32)
    primes = mini_params.q_primes + mini_params.p_primes
    return np.stack([
        rng.integers(0, p, mini_params.n) for p in primes
    ]).astype(np.int64)


class TestHpsLiftUnit:
    def test_functional_equals_rns_lift(self, lift_ctx, q_residues):
        unit = HpsLiftUnit(lift_ctx, CONFIG)
        result, _ = unit.run(q_residues)
        assert np.array_equal(result, lift_hps(lift_ctx, q_residues))

    def test_cycle_formula_matches_pipeline_recurrence(self, lift_ctx):
        """The closed form equals the event-driven block pipeline."""
        from repro.hw.block_pipeline import simulate_block_pipeline

        unit = HpsLiftUnit(lift_ctx, CONFIG)
        latencies = unit.block_latencies()
        for count in (1, 2, 7, 64, 257):
            finish = simulate_block_pipeline(count, latencies)
            simulated_end = finish[-1][-1]
            # cycles() takes the per-core count through the same chain.
            n = count * CONFIG.lift_cores
            assert unit.cycles(n) == simulated_end

    def test_throughput_is_bottleneck_bound(self, lift_ctx):
        """Steady-state issue rate equals the slowest block (7 cycles)."""
        unit = HpsLiftUnit(lift_ctx, CONFIG)
        small = unit.cycles(64 * CONFIG.lift_cores)
        large = unit.cycles(65 * CONFIG.lift_cores)
        assert large - small == CONFIG.hps_block_cycles

    def test_paper_lift_time(self, paper_params):
        """Table II: Lift with two cores in under 0.1 ms."""
        ctx = lift_context(paper_params.q_primes, paper_params.p_primes)
        unit = HpsLiftUnit(ctx, CONFIG)
        seconds = (unit.cycles(4096) + CONFIG.dispatch_overhead) \
            / CONFIG.fpga_clock_hz
        assert seconds < 100e-6

    def test_more_cores_fewer_cycles(self, lift_ctx):
        two = HpsLiftUnit(lift_ctx, CONFIG)
        four = HpsLiftUnit(lift_ctx, replace(CONFIG, lift_cores=4))
        assert four.cycles(4096) < two.cycles(4096)

    def test_mac_count_matches_paper(self, paper_params):
        """'we keep seven parallel MAC circuits in it' (Sec. V-B2)."""
        ctx = lift_context(paper_params.q_primes, paper_params.p_primes)
        assert HpsLiftUnit(ctx, CONFIG).mac_count == 7


class TestTraditionalLiftUnit:
    def test_functional_equals_exact_crt(self, lift_ctx, q_residues):
        unit = TraditionalLiftUnit(lift_ctx, slow_coprocessor_config())
        result, _ = unit.run(q_residues)
        assert np.array_equal(result,
                              lift_traditional(lift_ctx, q_residues))

    def test_paper_single_core_time(self, paper_params):
        """Sec. VI-C: 1.68 ms for one Lift on one core at 225 MHz."""
        config = replace(slow_coprocessor_config(), lift_cores=1)
        ctx = lift_context(paper_params.q_primes, paper_params.p_primes)
        unit = TraditionalLiftUnit(ctx, config)
        seconds = unit.cycles(4096) / config.fpga_clock_hz
        assert abs(seconds - 1.68e-3) / 1.68e-3 < 0.02

    def test_slower_than_hps(self, lift_ctx):
        hps = HpsLiftUnit(lift_ctx, CONFIG)
        trad = TraditionalLiftUnit(lift_ctx, replace(CONFIG, use_hps=False))
        assert trad.cycles(4096) > 5 * hps.cycles(4096)


class TestHpsScaleUnit:
    def test_functional_equals_rns_scale(self, scale_ctx, full_residues):
        unit = HpsScaleUnit(scale_ctx, CONFIG)
        result, _ = unit.run(full_residues)
        assert np.array_equal(result, scale_hps(scale_ctx, full_residues))

    def test_scale_time_close_to_lift(self, paper_params):
        """Paper: Scale ~ Lift thanks to the block-level pipeline."""
        lctx = lift_context(paper_params.q_primes, paper_params.p_primes)
        sctx = scale_context(paper_params.q_primes, paper_params.p_primes,
                             2)
        lift_cycles = HpsLiftUnit(lctx, CONFIG).cycles(4096)
        scale_cycles = HpsScaleUnit(sctx, CONFIG).cycles(4096)
        assert abs(scale_cycles - lift_cycles) / lift_cycles < 0.01


class TestTraditionalScaleUnit:
    def test_functional_equals_exact(self, scale_ctx, full_residues):
        unit = TraditionalScaleUnit(scale_ctx, slow_coprocessor_config())
        result, _ = unit.run(full_residues)
        assert np.array_equal(
            result, scale_traditional(scale_ctx, full_residues)
        )

    def test_paper_single_core_time(self, paper_params):
        """Sec. VI-C: 4.3 ms for one Scale on one core at 225 MHz."""
        config = replace(slow_coprocessor_config(), scale_cores=1)
        ctx = scale_context(paper_params.q_primes, paper_params.p_primes, 2)
        unit = TraditionalScaleUnit(ctx, config)
        seconds = unit.cycles(4096) / config.fpga_clock_hz
        assert abs(seconds - 4.3e-3) / 4.3e-3 < 0.02


class TestRpau:
    @pytest.fixture(scope="class")
    def rpau(self, mini_params):
        primes = (mini_params.q_primes[0], mini_params.p_primes[0])
        return Rpau(0, mini_params.n, primes, CONFIG)

    def test_coefficient_ops(self, rpau, mini_params, rng):
        prime = mini_params.q_primes[0]
        a = rng.integers(0, prime, mini_params.n)
        b = rng.integers(0, prime, mini_params.n)
        mul, _ = rpau.cmul(prime, a, b)
        add, _ = rpau.cadd(prime, a, b)
        sub, _ = rpau.csub(prime, a, b)
        assert np.array_equal(mul, (a * b) % prime)
        assert np.array_equal(add, (a + b) % prime)
        assert np.array_equal(sub, (a - b) % prime)

    def test_ntt_roundtrip(self, rpau, mini_params, rng):
        prime = mini_params.q_primes[0]
        values = rng.integers(0, prime, mini_params.n)
        forward, _ = rpau.ntt(prime, values)
        back, _ = rpau.intt(prime, forward)
        assert np.array_equal(back, values % prime)

    def test_rejects_unknown_prime(self, rpau):
        with pytest.raises(HardwareModelError):
            rpau.ntt_unit(17)

    def test_rejects_three_primes(self, mini_params):
        with pytest.raises(HardwareModelError):
            Rpau(0, mini_params.n, mini_params.q_primes[:3], CONFIG)

    def test_cycle_ordering(self, rpau):
        """CADD is cheaper than CMUL, both far cheaper than rearrange."""
        assert rpau.cadd_cycles() <= rpau.cmul_cycles()
        assert rpau.cmul_cycles() < rpau.rearrange_cycles()


class TestPrimeAssignment:
    def test_paper_mapping(self):
        """Sec. V-A1: (q0,q6), (q1,q7), ..., (q5,q11), q12 alone."""
        assignment = rpau_prime_assignment(6, 13, 7)
        assert assignment[0] == (0, 6)
        assert assignment[5] == (5, 11)
        assert assignment[6] == (12,)

    def test_every_prime_assigned_once(self):
        assignment = rpau_prime_assignment(6, 13, 7)
        flat = [idx for pair in assignment for idx in pair]
        assert sorted(flat) == list(range(13))

    def test_mini_mapping(self, mini_params):
        assignment = rpau_prime_assignment(
            mini_params.k_q, mini_params.k_total, 5
        )
        flat = [idx for pair in assignment for idx in pair]
        assert sorted(flat) == list(range(mini_params.k_total))

    def test_batches_paper(self):
        """q in one batch of 6, full basis in batches of 6 + 7."""
        batches = batch_rows(13, 6, 7)
        assert batches == [list(range(6)), list(range(6, 13))]
        assert batch_rows(6, 6, 7) == [list(range(6))]

    def test_batches_never_share_rpau(self):
        assignment = rpau_prime_assignment(6, 13, 7)
        rpau_of = {}
        for r, indices in enumerate(assignment):
            for idx in indices:
                rpau_of[idx] = r
        for batch in batch_rows(13, 6, 7):
            rpaus = [rpau_of[row] for row in batch]
            assert len(set(rpaus)) == len(rpaus)


class TestMemoryFile:
    def test_paper_bram_count(self, paper_params):
        """Table IV: 388 BRAM36K per coprocessor (we land within 5%)."""
        memory = MemoryFile(paper_params, CONFIG)
        total = memory.total_bram36k()
        assert abs(total - 388) / 388 < 0.05

    def test_breakdown_sums(self, paper_params):
        memory = MemoryFile(paper_params, CONFIG)
        breakdown = memory.breakdown()
        partial = sum(v for k, v in breakdown.items() if k != "total")
        assert partial == breakdown["total"]

    def test_budget_check(self, paper_params):
        memory = MemoryFile(paper_params, CONFIG)
        memory.check_budget(912)   # ZCU102 capacity: fits
        with pytest.raises(CapacityError):
            memory.check_budget(100)

    def test_smaller_ring_needs_less(self, paper_params, mini_params):
        big = MemoryFile(paper_params, CONFIG).total_bram36k()
        small = MemoryFile(mini_params, CONFIG).total_bram36k()
        assert small < big


class TestIsa:
    def test_emit_and_histogram(self):
        program = Program(name="test")
        program.emit(Opcode.NTT, dst="a", srcs=("a",), rows=(0, 1))
        program.emit(Opcode.CADD, dst="c", srcs=("a", "b"), rows=(0,))
        program.emit(Opcode.NTT, dst="b", srcs=("b",), rows=(0, 1))
        histogram = program.opcode_histogram()
        assert histogram[Opcode.NTT] == 2
        assert histogram[Opcode.CADD] == 1
        assert len(program) == 3

    def test_instruction_requires_destination(self):
        with pytest.raises(IsaError):
            Instruction(op=Opcode.CMUL, dst=None, srcs=("a", "b"))

    def test_load_rlk_needs_no_destination(self):
        Instruction(op=Opcode.LOAD_RLK, meta={"component": 0})

    def test_listing_readable(self):
        program = Program(name="test")
        program.emit(Opcode.LIFT, dst="a0", srcs=("a0",), rows=(0, 1, 2))
        listing = program.listing()
        assert "LIFT" in listing and "a0" in listing
