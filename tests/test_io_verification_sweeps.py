"""Tests for persistence (repro.io), the equivalence-campaign harness,
and the design-space sweeps."""

from dataclasses import replace

import numpy as np
import pytest

from repro.errors import EncodingError, ParameterError
from repro.fv.encoder import Plaintext
from repro.fv.evaluator import Evaluator
from repro.hw.config import HardwareConfig
from repro.hw.sweeps import (
    evaluate_point,
    pareto_front,
    sweep_butterfly_cores,
    sweep_conversion_cores,
    sweep_coprocessor_count,
)
from repro.hw.verification import run_campaign, run_configuration_matrix
from repro.io import (
    load_ciphertext,
    load_keyset,
    save_ciphertext,
    save_keyset,
)
from repro.params import mini, toy


class TestCiphertextIo:
    def test_roundtrip(self, tmp_path, toy_context, toy_keys, rng):
        params = toy_context.params
        plain = Plaintext(rng.integers(0, params.t, params.n), params.t)
        ct = toy_context.encrypt(plain, toy_keys.public)
        path = tmp_path / "ct.bin"
        save_ciphertext(path, ct)
        restored = load_ciphertext(path, params)
        assert np.array_equal(restored.c0.residues, ct.c0.residues)
        assert toy_context.decrypt(restored, toy_keys.secret) == plain

    def test_wrong_parameters_rejected(self, tmp_path, toy_context,
                                       toy_keys):
        params = toy_context.params
        ct = toy_context.encrypt(Plaintext.zero(params.n, params.t),
                                 toy_keys.public)
        path = tmp_path / "ct.bin"
        save_ciphertext(path, ct)
        with pytest.raises(ParameterError):
            load_ciphertext(path, mini())

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"NOTAFILE" + b"\x00" * 100)
        with pytest.raises(EncodingError):
            load_ciphertext(path, toy())

    def test_kind_mismatch_rejected(self, tmp_path, toy_context, toy_keys):
        params = toy_context.params
        path = tmp_path / "keys.bin"
        save_keyset(path, toy_keys, params)
        with pytest.raises(EncodingError):
            load_ciphertext(path, params)

    def test_roundtrip_property(self, tmp_path, toy_context, toy_keys):
        """Any encryptable plaintext survives the file roundtrip."""
        from hypothesis import HealthCheck, given, settings
        from hypothesis import strategies as st

        params = toy_context.params

        @settings(max_examples=10, deadline=None,
                  suppress_health_check=[HealthCheck.function_scoped_fixture,
                                         HealthCheck.too_slow])
        @given(st.lists(st.integers(0, params.t - 1), min_size=4,
                        max_size=8))
        def check(coeffs):
            plain = Plaintext.from_list(coeffs, params.n, params.t)
            ct = toy_context.encrypt(plain, toy_keys.public)
            path = tmp_path / "prop.bin"
            save_ciphertext(path, ct)
            restored = load_ciphertext(path, params)
            assert toy_context.decrypt(restored, toy_keys.secret) == plain

        check()


class TestKeysetIo:
    def test_roundtrip_and_interoperation(self, tmp_path, toy_context,
                                          toy_keys, rng):
        """Keys loaded from disk must decrypt and relinearise ciphertexts
        produced with the originals."""
        params = toy_context.params
        path = tmp_path / "keys.bin"
        save_keyset(path, toy_keys, params)
        loaded = load_keyset(path, params)

        assert np.array_equal(loaded.secret.coeffs, toy_keys.secret.coeffs)
        plain = Plaintext(rng.integers(0, params.t, params.n), params.t)
        ct = toy_context.encrypt(plain, loaded.public)
        assert toy_context.decrypt(ct, loaded.secret) == plain

        evaluator = Evaluator(toy_context)
        product = evaluator.multiply(ct, ct, loaded.relin)
        reference = evaluator.multiply(ct, ct, toy_keys.relin)
        assert toy_context.decrypt(product, loaded.secret) == \
            toy_context.decrypt(reference, toy_keys.secret)

    def test_truncated_file_rejected(self, tmp_path, toy_context,
                                     toy_keys):
        params = toy_context.params
        path = tmp_path / "keys.bin"
        save_keyset(path, toy_keys, params)
        data = path.read_bytes()
        path.write_bytes(data[:-16])
        with pytest.raises(EncodingError):
            load_keyset(path, params)


class TestVerificationHarness:
    def test_campaign_passes_on_default_config(self):
        result = run_campaign(params=toy(), operations=4, seed=5)
        assert result.passed
        assert result.operations == 4
        assert "PASS" in result.report()

    def test_campaign_counts_all_matches(self):
        result = run_campaign(params=toy(), operations=6, seed=6)
        assert result.bit_exact_matches == 6
        assert result.decrypt_matches == 6

    def test_configuration_matrix_all_pass(self):
        results = run_configuration_matrix(operations=2, seed=9)
        assert len(results) == 4
        assert all(result.passed for result in results)

    def test_design_knobs_do_not_change_results(self):
        """The core architectural claim behind the matrix: every corner
        produces identical ciphertexts, only timing differs."""
        base = run_campaign(params=toy(), operations=2, seed=11)
        pinned = run_campaign(
            params=toy(),
            config=replace(HardwareConfig(), relin_key_on_chip=True),
            operations=2, seed=11,
        )
        assert base.passed and pinned.passed


class TestSweeps:
    def test_coprocessor_count_scales_throughput(self, paper_params):
        points = sweep_coprocessor_count(paper_params, counts=(1, 2, 4))
        rates = [p.throughput_per_second for p in points]
        assert rates[1] == pytest.approx(2 * rates[0])
        assert rates[2] == pytest.approx(4 * rates[0])

    def test_f1_projection_exceeds_2000_per_second(self, paper_params):
        """Paper Sec. VII: ten coprocessors on an Amazon F1 instance."""
        points = sweep_coprocessor_count(paper_params, counts=(10,))
        assert points[0].throughput_per_second > 2000

    def test_conversion_cores_reduce_latency(self, paper_params):
        points = sweep_conversion_cores(paper_params)
        latencies = [p.mult_seconds for p in points]
        assert latencies == sorted(latencies, reverse=True)

    def test_butterfly_sweep_monotone(self, paper_params):
        single, dual = sweep_butterfly_cores(paper_params)
        assert dual.mult_seconds < single.mult_seconds
        assert dual.resources.dsps > single.resources.dsps

    def test_pareto_front_excludes_dominated(self, paper_params):
        base = HardwareConfig()
        good = evaluate_point(paper_params, "good", base)
        # Same latency knobs, strictly more logic: dominated.
        bloated = evaluate_point(
            paper_params, "bloated",
            replace(base, lift_cores=4, scale_cores=4),
        )
        slower = evaluate_point(
            paper_params, "slower",
            replace(base, butterfly_cores_per_rpau=1),
        )
        front = pareto_front([good, bloated, slower])
        labels = {p.label for p in front}
        assert "good" in labels
        assert "slower" in labels  # cheaper, slower: on the front

    def test_rows_render(self, paper_params):
        for point in sweep_butterfly_cores(paper_params):
            assert "ms" in point.row()


class TestWireCorruptionSweep:
    """Seeded fuzz over the wire formats: corruption must fail *closed*.

    Every truncation prefix and every seeded bit flip of a saved file
    must either load back cleanly (the flip landed somewhere genuinely
    unchecked) or raise a :class:`repro.errors.ReproError` subclass —
    never a bare ``struct``/``json``/``unicode``/numpy internals error.
    """

    def _ciphertext_file(self, tmp_path, toy_context, toy_keys):
        params = toy_context.params
        ct = toy_context.encrypt(Plaintext.zero(params.n, params.t),
                                 toy_keys.public)
        path = tmp_path / "fuzz_ct.bin"
        save_ciphertext(path, ct)
        return path, params

    def test_ciphertext_truncations_fail_closed(self, tmp_path,
                                                toy_context, toy_keys):
        from repro.errors import ReproError

        path, params = self._ciphertext_file(tmp_path, toy_context,
                                             toy_keys)
        blob = path.read_bytes()
        target = tmp_path / "trunc.bin"
        # Every framing boundary plus a stride across the payload.
        cuts = sorted(set(range(0, 16)) |
                      set(range(16, len(blob), 97)) | {len(blob) - 1})
        for cut in cuts:
            target.write_bytes(blob[:cut])
            with pytest.raises(ReproError):
                load_ciphertext(target, params)

    def test_keyset_truncations_fail_closed(self, tmp_path, toy_context,
                                            toy_keys):
        from repro.errors import ReproError

        params = toy_context.params
        path = tmp_path / "fuzz_keys.bin"
        save_keyset(path, toy_keys, params)
        blob = path.read_bytes()
        target = tmp_path / "trunc.bin"
        cuts = sorted(set(range(0, 16)) |
                      set(range(16, len(blob), 211)) | {len(blob) - 1})
        for cut in cuts:
            target.write_bytes(blob[:cut])
            with pytest.raises(ReproError):
                load_keyset(target, params)

    def test_seeded_bit_flips_never_leak_internals(self, tmp_path,
                                                   toy_context, toy_keys):
        from repro.errors import ReproError

        path, params = self._ciphertext_file(tmp_path, toy_context,
                                             toy_keys)
        blob = bytearray(path.read_bytes())
        target = tmp_path / "flip.bin"
        rng = np.random.default_rng(2026)
        for _ in range(64):
            pos = int(rng.integers(0, len(blob)))
            bit = 1 << int(rng.integers(0, 8))
            flipped = bytearray(blob)
            flipped[pos] ^= bit
            target.write_bytes(bytes(flipped))
            try:
                load_ciphertext(target, params)
            except ReproError:
                pass  # failed closed — the contract
            # Anything else (struct.error, JSONDecodeError, numpy
            # shape errors) propagates and fails the test.

    def test_v2_digest_catches_every_payload_flip(self, tmp_path,
                                                  toy_context, toy_keys):
        path, params = self._ciphertext_file(tmp_path, toy_context,
                                             toy_keys)
        blob = bytearray(path.read_bytes())
        header_len = int.from_bytes(blob[8:12], "little")
        payload_start = 12 + header_len
        rng = np.random.default_rng(7)
        target = tmp_path / "flip.bin"
        for _ in range(16):
            pos = payload_start + int(
                rng.integers(0, len(blob) - payload_start))
            flipped = bytearray(blob)
            flipped[pos] ^= 1 << int(rng.integers(0, 8))
            target.write_bytes(bytes(flipped))
            with pytest.raises(EncodingError, match="digest"):
                load_ciphertext(target, params)

    def test_corrupt_header_length_field(self, tmp_path, toy_context,
                                         toy_keys):
        path, params = self._ciphertext_file(tmp_path, toy_context,
                                             toy_keys)
        blob = bytearray(path.read_bytes())
        blob[8:12] = (2 ** 31).to_bytes(4, "little")
        path.write_bytes(bytes(blob))
        with pytest.raises(EncodingError, match="truncated"):
            load_ciphertext(path, params)

    def test_implausible_relin_component_count(self, tmp_path,
                                               toy_context, toy_keys):
        import json as _json
        import struct as _struct

        params = toy_context.params
        path = tmp_path / "keys.bin"
        save_keyset(path, toy_keys, params)
        blob = path.read_bytes()
        header_len = int.from_bytes(blob[8:12], "little")
        header = _json.loads(blob[12:12 + header_len])
        payload = blob[12 + header_len:]
        for bad in (-1, 10 ** 6, "lots", None, True):
            header["relin_components"] = bad
            head = _json.dumps(header, sort_keys=True).encode()
            path.write_bytes(b"REPROFV1" + _struct.pack("<I", len(head))
                             + head + payload)
            with pytest.raises(EncodingError, match="implausible"):
                load_keyset(path, params)


class TestKeyMaterialWireV2:
    """Key wire format v2: NTT-domain persistence with per-digit digests.

    The acceptance contract is *zero* key-material transforms on load —
    the per-digit NTTs every load used to re-derive are paid once at
    save time — with version-1 files still loading through the old
    re-derive path.
    """

    @staticmethod
    def _transform_delta(fn):
        from repro.nttmath.batch import transform_counts

        before = transform_counts()
        result = fn()
        delta = {k: v - before[k] for k, v in transform_counts().items()}
        return result, delta

    def test_v2_load_performs_zero_key_transforms(self, tmp_path,
                                                  toy_context, toy_keys):
        params = toy_context.params
        path = tmp_path / "keys.bin"
        save_keyset(path, toy_keys, params)
        loaded, delta = self._transform_delta(
            lambda: load_keyset(path, params))
        assert all(v == 0 for v in delta.values()), delta
        assert np.array_equal(loaded.secret.ntt_rows,
                              toy_keys.secret.ntt_rows)
        assert np.array_equal(loaded.public.p0_ntt, toy_keys.public.p0_ntt)
        assert np.array_equal(loaded.public.p1_ntt, toy_keys.public.p1_ntt)
        for (b, a), (rb, ra) in zip(loaded.relin.pairs,
                                    toy_keys.relin.pairs, strict=True):
            assert np.array_equal(b, rb) and np.array_equal(a, ra)

    def _synthesize_v1(self, v2_path, target, params):
        """Strip the version-2 header fields and NTT payload block."""
        import json as _json
        import struct as _struct

        blob = v2_path.read_bytes()
        header_len = int.from_bytes(blob[8:12], "little")
        header = _json.loads(blob[12:12 + header_len])
        payload = blob[12 + header_len:]
        for field in ("version", "ntt_digest", "relin_digests"):
            del header[field]
        k_q, n = params.k_q, params.n
        ntt_start = 8 * n + 2 * 8 * k_q * n
        ntt_len = 3 * 8 * k_q * n
        payload = payload[:ntt_start] + payload[ntt_start + ntt_len:]
        head = _json.dumps(header, sort_keys=True).encode()
        target.write_bytes(b"REPROFV1" + _struct.pack("<I", len(head))
                           + head + payload)

    def test_v1_file_loads_and_rederives_caches(self, tmp_path,
                                                toy_context, toy_keys):
        params = toy_context.params
        v2_path = tmp_path / "keys_v2.bin"
        save_keyset(v2_path, toy_keys, params)
        v1_path = tmp_path / "keys_v1.bin"
        self._synthesize_v1(v2_path, v1_path, params)
        loaded, delta = self._transform_delta(
            lambda: load_keyset(v1_path, params))
        # The old cost: forward key transforms happen on load...
        assert delta["forward_calls"] > 0
        # ...but the caches come out identical to the persisted ones.
        assert np.array_equal(loaded.secret.ntt_rows,
                              toy_keys.secret.ntt_rows)
        assert np.array_equal(loaded.public.p0_ntt, toy_keys.public.p0_ntt)
        assert np.array_equal(loaded.public.p1_ntt, toy_keys.public.p1_ntt)

    def test_relin_digest_corruption_rejected(self, tmp_path, toy_context,
                                              toy_keys):
        params = toy_context.params
        path = tmp_path / "keys.bin"
        save_keyset(path, toy_keys, params)
        blob = bytearray(path.read_bytes())
        header_len = int.from_bytes(blob[8:12], "little")
        k_q, n = params.k_q, params.n
        # First byte of the first relin pair: past secret + public +
        # the three persisted NTT caches.
        pos = 12 + header_len + 8 * n + 5 * 8 * k_q * n
        blob[pos] ^= 0x40
        path.write_bytes(bytes(blob))
        with pytest.raises(EncodingError, match="digest"):
            load_keyset(path, params)

    def test_galois_bundle_roundtrip_zero_transforms(self, tmp_path,
                                                     toy_context,
                                                     toy_keys, rng):
        from repro.fv.galois import GaloisEngine
        from repro.io import load_galois_keys, save_galois_keys

        params = toy_context.params
        engine = GaloisEngine(toy_context)
        keys = engine.summation_keygen(toy_keys.secret)
        path = tmp_path / "galois.bin"
        save_galois_keys(path, keys, params)
        loaded, delta = self._transform_delta(
            lambda: load_galois_keys(path, params))
        assert all(v == 0 for v in delta.values()), delta
        assert set(loaded) == set(keys)
        for label, key in keys.items():
            assert loaded[label].element == key.element

        plain = Plaintext(rng.integers(0, params.t, params.n), params.t)
        ct = toy_context.encrypt(plain, toy_keys.public)
        got = engine.rotate(ct, 1, loaded)
        want = engine.rotate(ct, 1, keys)
        assert toy_context.decrypt(got, toy_keys.secret) == \
            toy_context.decrypt(want, toy_keys.secret)

    def test_galois_bad_label_rejected(self, tmp_path, toy_context,
                                       toy_keys):
        import json as _json
        import struct as _struct

        from repro.fv.galois import GaloisEngine
        from repro.io import load_galois_keys, save_galois_keys

        params = toy_context.params
        engine = GaloisEngine(toy_context)
        keys = engine.rotation_keygen(toy_keys.secret, [1])
        path = tmp_path / "galois.bin"
        save_galois_keys(path, keys, params)
        blob = path.read_bytes()
        header_len = int.from_bytes(blob[8:12], "little")
        header = _json.loads(blob[12:12 + header_len])
        header["entries"][0]["label"] = "sideways"
        head = _json.dumps(header, sort_keys=True).encode()
        path.write_bytes(b"REPROFV1" + _struct.pack("<I", len(head))
                         + head + blob[12 + header_len:])
        with pytest.raises(EncodingError, match="label"):
            load_galois_keys(path, params)
