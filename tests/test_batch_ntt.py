"""Batched NTT engine and NTT-resident executor properties.

The invariants this PR rides on:

* the gemm-based :class:`~repro.nttmath.batch.BasisTransformer` is
  bit-exact against the per-row ``NegacyclicTransformer`` and the
  paper-literal ``ntt_iterative`` across ring sizes and basis shapes;
* the fused digit transform and the per-channel-scaled inverse equal
  their compose-by-hand definitions;
* ``per_row_mode`` changes performance, never results;
* the NTT-resident ``LocalBackend`` produces the same ciphertexts as
  the eager executor while performing strictly fewer transforms on
  rotation-heavy programs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import LocalBackend, Session
from repro.fv.galois import GaloisEngine
from repro.nttmath.batch import (
    basis_transformer,
    intt_rows,
    intt_rows_scaled,
    ntt_broadcast_rows,
    ntt_rows,
    per_row_mode,
)
from repro.nttmath.ntt import NegacyclicTransformer, intt_iterative, ntt_iterative
from repro.nttmath.primes import find_ntt_primes
from repro.params import mini, toy
from repro.poly.rns_poly import RnsPoly
from repro.rns.basis import basis_for

#: (n, k) shapes exercised by the equivalence tests: small/odd mixes of
#: ring degree and basis size, including single-limb and non-square n.
SHAPES = [(64, 1), (64, 3), (128, 2), (256, 5), (512, 4)]

fast_settings = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _basis(n, k):
    return tuple(find_ntt_primes(30, n, k))


class TestBatchedTransformEquivalence:
    @pytest.mark.parametrize("n,k", SHAPES)
    def test_forward_matches_per_row_and_iterative(self, n, k):
        primes = _basis(n, k)
        bt = basis_transformer(primes, n)
        rng = np.random.default_rng(n * k)
        mat = rng.integers(0, bt.primes_col, size=(k, n))
        got = bt.forward(mat)
        for row, p in enumerate(primes):
            tr = NegacyclicTransformer(n, p)
            per_row = tr.forward(mat[row])
            assert np.array_equal(got[row], per_row)
            twisted = [
                int(c) * int(psi) % p
                for c, psi in zip(mat[row], tr.psi_powers)
            ]
            reference = ntt_iterative(twisted, p, tr.omega)
            assert got[row].tolist() == reference

    @pytest.mark.parametrize("n,k", SHAPES)
    def test_inverse_matches_per_row_and_roundtrips(self, n, k):
        primes = _basis(n, k)
        bt = basis_transformer(primes, n)
        rng = np.random.default_rng(n + k)
        mat = rng.integers(0, bt.primes_col, size=(k, n))
        values = bt.forward(mat)
        back = bt.inverse(values)
        assert np.array_equal(back, mat)
        for row, p in enumerate(primes):
            tr = NegacyclicTransformer(n, p)
            assert np.array_equal(back[row], tr.inverse(values[row]))
            # Plain (non-negacyclic) INTT agreement on the untwisted
            # transform ties the engine to paper Algorithm 1's inverse.
            plain = ntt_iterative(list(map(int, mat[row])), p, tr.omega)
            assert intt_iterative(plain, p, tr.omega) == \
                [int(v) for v in mat[row]]

    @pytest.mark.parametrize("n,k", [(64, 3), (256, 4)])
    def test_stacked_equals_individual(self, n, k):
        primes = _basis(n, k)
        bt = basis_transformer(primes, n)
        rng = np.random.default_rng(5)
        stack = rng.integers(0, bt.primes_col, size=(4, k, n))
        fwd = bt.forward(stack)
        inv = bt.inverse(fwd)
        for j in range(4):
            assert np.array_equal(fwd[j], bt.forward(stack[j]))
        assert np.array_equal(inv, stack)

    @fast_settings
    @given(st.integers(0, 2**31 - 1), st.integers(0, 6))
    def test_forward_property_random_rows(self, seed, shift):
        n, k = 128, 3
        primes = _basis(n, k)
        bt = basis_transformer(primes, n)
        rng = np.random.default_rng(seed)
        mat = np.roll(rng.integers(0, bt.primes_col, size=(k, n)), shift,
                      axis=1) % bt.primes_col
        with per_row_mode():
            reference = ntt_rows(primes, mat)
        assert np.array_equal(bt.forward(mat), reference)

    def test_lazy_forward_is_congruent(self):
        params = mini()
        primes = params.q_primes
        bt = basis_transformer(primes, params.n)
        rng = np.random.default_rng(9)
        mat = rng.integers(0, bt.primes_col, size=(len(primes), params.n))
        canon = bt.forward(mat)
        lazy = bt.forward(mat, lazy=True)
        assert lazy.max() < 2 * max(primes)
        assert np.array_equal(lazy % bt.primes_col, canon)

    def test_broadcast_rows_equals_reduce_then_transform(self):
        params = mini()
        primes = params.q_primes
        rng = np.random.default_rng(11)
        rows = rng.integers(0, 1 << 30, size=(5, params.n))
        got = ntt_broadcast_rows(primes, rows)
        primes_col = np.array(primes, dtype=np.int64)[:, None]
        expected = ntt_rows(primes,
                            rows[:, None, :] % primes_col[None, :, :])
        assert np.array_equal(got, expected)

    def test_scaled_inverse_equals_compose(self):
        params = mini()
        primes = params.q_primes + params.p_primes
        bt = basis_transformer(primes, params.n)
        rng = np.random.default_rng(13)
        mat = rng.integers(0, bt.primes_col, size=(len(primes), params.n))
        constants = tuple(int(c) for c in rng.integers(1, 1 << 30,
                                                       len(primes)))
        got = intt_rows_scaled(primes, mat, constants)
        consts_col = np.array(
            [c % p for c, p in zip(constants, primes)], dtype=np.int64
        )[:, None]
        expected = (intt_rows(primes, mat) * consts_col) % bt.primes_col
        assert np.array_equal(got, expected)

    def test_per_row_mode_changes_nothing_but_speed(self):
        params = toy()
        session = Session(params, seed=3, encoder="coeff")
        a = session.encrypt([1, 2, 3])
        b = session.encrypt([4, 5, 6])
        batched = session.decrypt(a * b + a, size=4)
        with per_row_mode():
            session_slow = Session(params, seed=3, encoder="coeff")
            a2 = session_slow.encrypt([1, 2, 3])
            b2 = session_slow.encrypt([4, 5, 6])
            per_row = session_slow.decrypt(a2 * b2 + a2, size=4)
        assert np.array_equal(batched, per_row)


class TestRnsPolyAliasing:
    def test_constructor_does_not_mutate_caller_array(self):
        """Regression: ``residues %= primes`` used to write through to
        the caller's array whenever np.asarray returned it unchanged."""
        params = toy()
        basis = basis_for(params.q_primes)
        original = np.full((basis.size, params.n),
                           max(params.q_primes) + 5, dtype=np.int64)
        snapshot = original.copy()
        poly = RnsPoly(basis, original)
        assert np.array_equal(original, snapshot)
        assert poly.residues.max() < max(params.q_primes)

    def test_trusted_adopts_without_copy(self):
        params = toy()
        basis = basis_for(params.q_primes)
        rows = np.zeros((basis.size, params.n), dtype=np.int64)
        poly = RnsPoly.trusted(basis, rows)
        assert poly.residues is rows


class TestNttResidentBackend:
    def _rotation_heavy(self, session):
        a = session.encrypt(list(range(1, 9)))
        b = session.encrypt([2] * 8)
        return session.compile((a * b).sum_slots() + a, name="rot-heavy")

    def test_resident_matches_eager_and_saves_transforms(self):
        params = mini(t=257)
        eager_session = Session(params, seed=21)
        resident_session = Session(params, seed=21)
        eager = LocalBackend(eager_session, ntt_resident=False)
        resident = LocalBackend(resident_session, ntt_resident=True)
        eager_result = eager.run(self._rotation_heavy(eager_session))
        resident_result = resident.run(
            self._rotation_heavy(resident_session))
        assert np.array_equal(eager_result.decrypt("out"),
                              resident_result.decrypt("out"))
        eager_rows = (eager.last_transform_counts["forward_rows"]
                      + eager.last_transform_counts["inverse_rows"])
        resident_rows = (resident.last_transform_counts["forward_rows"]
                         + resident.last_transform_counts["inverse_rows"])
        assert resident_rows < eager_rows
        assert resident.telemetry["ntt_resident"] is True
        assert resident.telemetry["total"]["forward_rows"] >= \
            resident.last_transform_counts["forward_rows"]

    def test_outputs_leave_in_coefficient_domain(self):
        params = mini(t=257)
        session = Session(params, seed=23)
        a = session.encrypt([1, 2, 3])
        program = session.compile(a.rotate(1) * 2, name="resident-out")
        result = LocalBackend(session, ntt_resident=True).run(program)
        ct = result.handle("out").ciphertext
        assert not ct.ntt_resident
        ct.to_bytes()  # serialisable without conversion

    def test_plain_pool_caches_constant_transforms(self):
        params = mini(t=257)
        session = Session(params, seed=25)
        plain = session.encode(7)
        first = session.plain_ntt(plain)
        assert session.plain_ntt(plain) is first
        delta_first = session.plain_delta_ntt(plain)
        assert session.plain_delta_ntt(plain) is delta_first

    def test_resident_rotation_bit_exact(self):
        params = mini(t=257)
        session = Session(params, seed=27)
        context = session.context
        engine = GaloisEngine(context)
        keys = session.keys
        rot = engine.rotation_keygen(keys.secret, [2])
        ct = session.encrypt([5, 6, 7]).ciphertext
        eager = engine.apply(ct, rot[2])
        resident = context.to_coeff_ct(
            engine.apply_resident(context.to_ntt_ct(ct), rot[2])
        )
        assert np.array_equal(eager.c0.residues, resident.c0.residues)
        assert np.array_equal(eager.c1.residues, resident.c1.residues)


class TestNarrowPrimeFallbacks:
    def test_lift_narrow_primes_stay_exact(self):
        """Primes below 30 bits have >60-significant-bit reciprocals,
        which the lift gemm's four 15-bit limbs cannot carry — the
        context must route them to the reference loop (regression for
        the gemm_safe guard)."""
        from repro.nttmath.primes import find_ntt_primes
        from repro.rns.basis import lift_context
        from repro.rns.lift import lift_hps, lift_hps_reference

        n = 64
        source = tuple(find_ntt_primes(28, n, 3))
        target = source + tuple(find_ntt_primes(29, n, 2))
        ctx = lift_context(source, target)
        assert not ctx.gemm_safe
        rng = np.random.default_rng(31)
        mat = rng.integers(
            0, np.array(source, dtype=np.int64)[:, None], size=(3, n)
        )
        assert np.array_equal(lift_hps(ctx, mat),
                              lift_hps_reference(ctx, mat))
