"""Batched NTT engine and NTT-resident executor properties.

The invariants this PR rides on:

* the gemm-based :class:`~repro.nttmath.batch.BasisTransformer` is
  bit-exact against the per-row ``NegacyclicTransformer`` and the
  paper-literal ``ntt_iterative`` across ring sizes and basis shapes;
* the fused digit transform and the per-channel-scaled inverse equal
  their compose-by-hand definitions;
* ``per_row_mode`` changes performance, never results;
* the NTT-resident ``LocalBackend`` produces the same ciphertexts as
  the eager executor while performing strictly fewer transforms on
  rotation-heavy programs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import LocalBackend, Session
from repro.fv.galois import GaloisEngine
from repro.nttmath.batch import (
    MAX_ENGINE_N,
    _limb_plan,
    _plan_geometry,
    basis_transformer,
    batched_engine_ok,
    engine_fallbacks,
    engine_unsupported_reason,
    intt_rows,
    intt_rows_scaled,
    ntt_broadcast_rows,
    ntt_rows,
    per_row_mode,
    reset_engine_fallbacks,
    transform_counts,
)
from repro.nttmath.ntt import NegacyclicTransformer, intt_iterative, ntt_iterative
from repro.nttmath.primes import find_ntt_primes
from repro.params import mini, toy
from repro.poly.rns_poly import RnsPoly
from repro.rns.basis import basis_for

#: (n, k) shapes exercised by the equivalence tests: small/odd mixes of
#: ring degree and basis size, including single-limb and non-square n.
SHAPES = [(64, 1), (64, 3), (128, 2), (256, 5), (512, 4)]

fast_settings = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _basis(n, k):
    return tuple(find_ntt_primes(30, n, k))


class TestBatchedTransformEquivalence:
    @pytest.mark.parametrize("n,k", SHAPES)
    def test_forward_matches_per_row_and_iterative(self, n, k):
        primes = _basis(n, k)
        bt = basis_transformer(primes, n)
        rng = np.random.default_rng(n * k)
        mat = rng.integers(0, bt.primes_col, size=(k, n))
        got = bt.forward(mat)
        for row, p in enumerate(primes):
            tr = NegacyclicTransformer(n, p)
            per_row = tr.forward(mat[row])
            assert np.array_equal(got[row], per_row)
            twisted = [
                int(c) * int(psi) % p
                for c, psi in zip(mat[row], tr.psi_powers, strict=True)
            ]
            reference = ntt_iterative(twisted, p, tr.omega)
            assert got[row].tolist() == reference

    @pytest.mark.parametrize("n,k", SHAPES)
    def test_inverse_matches_per_row_and_roundtrips(self, n, k):
        primes = _basis(n, k)
        bt = basis_transformer(primes, n)
        rng = np.random.default_rng(n + k)
        mat = rng.integers(0, bt.primes_col, size=(k, n))
        values = bt.forward(mat)
        back = bt.inverse(values)
        assert np.array_equal(back, mat)
        for row, p in enumerate(primes):
            tr = NegacyclicTransformer(n, p)
            assert np.array_equal(back[row], tr.inverse(values[row]))
            # Plain (non-negacyclic) INTT agreement on the untwisted
            # transform ties the engine to paper Algorithm 1's inverse.
            plain = ntt_iterative(list(map(int, mat[row])), p, tr.omega)
            assert intt_iterative(plain, p, tr.omega) == \
                [int(v) for v in mat[row]]

    @pytest.mark.parametrize("n,k", [(64, 3), (256, 4)])
    def test_stacked_equals_individual(self, n, k):
        primes = _basis(n, k)
        bt = basis_transformer(primes, n)
        rng = np.random.default_rng(5)
        stack = rng.integers(0, bt.primes_col, size=(4, k, n))
        fwd = bt.forward(stack)
        inv = bt.inverse(fwd)
        for j in range(4):
            assert np.array_equal(fwd[j], bt.forward(stack[j]))
        assert np.array_equal(inv, stack)

    @fast_settings
    @given(st.integers(0, 2**31 - 1), st.integers(0, 6))
    def test_forward_property_random_rows(self, seed, shift):
        n, k = 128, 3
        primes = _basis(n, k)
        bt = basis_transformer(primes, n)
        rng = np.random.default_rng(seed)
        mat = np.roll(rng.integers(0, bt.primes_col, size=(k, n)), shift,
                      axis=1) % bt.primes_col
        with per_row_mode():
            reference = ntt_rows(primes, mat)
        assert np.array_equal(bt.forward(mat), reference)

    def test_lazy_forward_is_congruent(self):
        params = mini()
        primes = params.q_primes
        bt = basis_transformer(primes, params.n)
        rng = np.random.default_rng(9)
        mat = rng.integers(0, bt.primes_col, size=(len(primes), params.n))
        canon = bt.forward(mat)
        lazy = bt.forward(mat, lazy=True)
        assert lazy.max() < 2 * max(primes)
        assert np.array_equal(lazy % bt.primes_col, canon)

    def test_broadcast_rows_equals_reduce_then_transform(self):
        params = mini()
        primes = params.q_primes
        rng = np.random.default_rng(11)
        rows = rng.integers(0, 1 << 30, size=(5, params.n))
        got = ntt_broadcast_rows(primes, rows)
        primes_col = np.array(primes, dtype=np.int64)[:, None]
        expected = ntt_rows(primes,
                            rows[:, None, :] % primes_col[None, :, :])
        assert np.array_equal(got, expected)

    def test_scaled_inverse_equals_compose(self):
        params = mini()
        primes = params.q_primes + params.p_primes
        bt = basis_transformer(primes, params.n)
        rng = np.random.default_rng(13)
        mat = rng.integers(0, bt.primes_col, size=(len(primes), params.n))
        constants = tuple(int(c) for c in rng.integers(1, 1 << 30,
                                                       len(primes)))
        got = intt_rows_scaled(primes, mat, constants)
        consts_col = np.array(
            [c % p for c, p in zip(constants, primes, strict=True)], dtype=np.int64
        )[:, None]
        expected = (intt_rows(primes, mat) * consts_col) % bt.primes_col
        assert np.array_equal(got, expected)

    def test_per_row_mode_changes_nothing_but_speed(self):
        params = toy()
        session = Session(params, seed=3, encoder="coeff")
        a = session.encrypt([1, 2, 3])
        b = session.encrypt([4, 5, 6])
        batched = session.decrypt(a * b + a, size=4)
        with per_row_mode():
            session_slow = Session(params, seed=3, encoder="coeff")
            a2 = session_slow.encrypt([1, 2, 3])
            b2 = session_slow.encrypt([4, 5, 6])
            per_row = session_slow.decrypt(a2 * b2 + a2, size=4)
        assert np.array_equal(batched, per_row)


class TestLargeRingEngine:
    """The generalised engine covers every supported n up to 32768.

    The acceptance bar of the large-ring PR: batched transforms stay
    bit-identical to the paper-literal ``ntt_iterative`` and the
    per-row ``NegacyclicTransformer`` at n = 8192, 16384, and 32768
    with 30-bit primes — the degrees the old four-step split either
    served with no headroom or silently refused.
    """

    @pytest.mark.parametrize("n", [8192, 16384, 32768])
    def test_large_n_matches_per_row_and_iterative(self, n):
        primes = _basis(n, 2)
        assert batched_engine_ok(primes, n)
        bt = basis_transformer(primes, n)
        rng = np.random.default_rng(n)
        mat = rng.integers(0, bt.primes_col, size=(2, n))
        got = bt.forward(mat)
        assert np.array_equal(bt.inverse(got), mat)
        lazy = bt.forward(mat, lazy=True)
        assert lazy.max() < 2 * max(primes)
        assert np.array_equal(lazy % bt.primes_col, got)
        for row, p in enumerate(primes):
            tr = NegacyclicTransformer(n, p)
            assert np.array_equal(got[row], tr.forward(mat[row]))
        # Paper Algorithm 1, pure-Python, on one row: the ground truth.
        p = primes[0]
        tr = NegacyclicTransformer(n, p)
        twisted = [
            int(c) * int(psi) % p
            for c, psi in zip(mat[0], tr.psi_powers, strict=True)
        ]
        assert got[0].tolist() == ntt_iterative(twisted, p, tr.omega)

    @pytest.mark.parametrize("n", [8192, 32768])
    def test_large_n_broadcast_and_scaled_inverse(self, n):
        primes = _basis(n, 3)
        bt = basis_transformer(primes, n)
        rng = np.random.default_rng(n + 1)
        rows = rng.integers(0, 1 << 30, size=(2, n))
        got = ntt_broadcast_rows(primes, rows)
        primes_col = bt.primes_col
        expected = ntt_rows(primes, rows[:, None, :] % primes_col[None])
        assert np.array_equal(got, expected)
        mat = rng.integers(0, primes_col, size=(3, n))
        constants = tuple(int(c) for c in rng.integers(1, 1 << 30, 3))
        scaled = intt_rows_scaled(primes, mat, constants)
        consts_col = np.array(
            [c % p for c, p in zip(constants, primes, strict=True)], dtype=np.int64
        )[:, None]
        assert np.array_equal(
            scaled, (intt_rows(primes, mat) * consts_col) % primes_col
        )

    def test_limb_plans_stay_exact_by_construction(self):
        """The per-step limb plans prove their own bound: the worst
        partial sum (plus the reduction's one-modulus overshoot) stays
        at or below 2^53."""
        max_prime = (1 << 30) - 35
        for length, max_value in [(128, (1 << 30) - 1),
                                  (256, (1 << 30) - 1),
                                  (64, 2 * max_prime - 1),
                                  (4096, (1 << 30) - 1)]:
            split = _limb_plan(length, max_value, max_prime)
            assert split is not None
            top = max_value >> (split.bits * (split.count - 1))
            rest = (1 << split.bits) - 1
            worst = length * (max_prime - 1) * (
                top + (split.count - 1) * rest
            )
            assert worst + max_prime <= 1 << 53

    def test_geometry_matches_pre_generalisation_layouts(self):
        """n <= 16384 keeps the exact pre-PR four-step factorisation
        (two stages of two 15-bit limbs, n1 = 2^ceil(log2(n)/2));
        n = 32768 opens the three-stage split, whose balanced 32-point
        sub-DFTs cost 192 gemm flops per element instead of the
        wide-limb four-step's 1024."""
        max_prime = max(_basis(4096, 1))
        for n, n1 in [(4096, 64), (8192, 128), (16384, 128)]:
            g = _plan_geometry(n, max_prime)
            assert g.factors == (n1, n // n1)
            assert all(s.split.count == 2 for s in g.stages)
        g = _plan_geometry(32768, max_prime)
        assert len(g.factors) == 3
        assert np.prod(g.factors) == 32768
        assert all(f <= 128 for f in g.factors)
        assert all(s.split.count == 2 for s in g.stages)

    def test_unsupported_reasons(self):
        primes = _basis(64, 2)
        assert engine_unsupported_reason(primes, 64) is None
        assert "envelope" in engine_unsupported_reason(
            primes, MAX_ENGINE_N * 2
        )
        wide = tuple(find_ntt_primes(31, 64, 1))
        assert "4q < 2^32" in engine_unsupported_reason(wide, 64)


class TestFallbackDiagnostics:
    """Satellite: the large-ring fallback is no longer silent."""

    def test_fallback_records_diagnostic_and_logs(self, caplog):
        reset_engine_fallbacks()
        # A 31-bit NTT-friendly prime: the per-row path serves it, the
        # gemm engine's lazy-reduction headroom does not.
        primes = tuple(find_ntt_primes(31, 64, 1))
        mat = np.arange(64, dtype=np.int64)[None, :] % primes[0]
        before = transform_counts()["fallback_calls"]
        with caplog.at_level("WARNING", logger="repro.nttmath.batch"):
            out = ntt_rows(primes, mat)
        assert np.array_equal(
            intt_rows(primes, out), mat
        )  # per-row path is still exact
        events = engine_fallbacks()
        assert events and events[-1].max_prime_bits == 31
        assert "4q < 2^32" in events[-1].reason
        assert transform_counts()["fallback_calls"] >= before + 2
        assert any("per-row" in record.message
                   for record in caplog.records)
        reset_engine_fallbacks()

    def test_per_row_mode_is_not_a_fallback(self):
        reset_engine_fallbacks()
        primes = _basis(64, 2)
        mat = np.ones((2, 64), dtype=np.int64)
        with per_row_mode():
            ntt_rows(primes, mat)
        assert engine_fallbacks() == ()


class TestRnsPolyAliasing:
    def test_constructor_does_not_mutate_caller_array(self):
        """Regression: ``residues %= primes`` used to write through to
        the caller's array whenever np.asarray returned it unchanged."""
        params = toy()
        basis = basis_for(params.q_primes)
        original = np.full((basis.size, params.n),
                           max(params.q_primes) + 5, dtype=np.int64)
        snapshot = original.copy()
        poly = RnsPoly(basis, original)
        assert np.array_equal(original, snapshot)
        assert poly.residues.max() < max(params.q_primes)

    def test_trusted_adopts_without_copy(self):
        params = toy()
        basis = basis_for(params.q_primes)
        rows = np.zeros((basis.size, params.n), dtype=np.int64)
        poly = RnsPoly.trusted(basis, rows)
        assert poly.residues is rows


class TestNttResidentBackend:
    def _rotation_heavy(self, session):
        a = session.encrypt(list(range(1, 9)))
        b = session.encrypt([2] * 8)
        return session.compile((a * b).sum_slots() + a, name="rot-heavy")

    def test_resident_matches_eager_and_saves_transforms(self):
        params = mini(t=257)
        eager_session = Session(params, seed=21)
        resident_session = Session(params, seed=21)
        eager = LocalBackend(eager_session, ntt_resident=False)
        resident = LocalBackend(resident_session, ntt_resident=True)
        eager_result = eager.run(self._rotation_heavy(eager_session))
        resident_result = resident.run(
            self._rotation_heavy(resident_session))
        assert np.array_equal(eager_result.decrypt("out"),
                              resident_result.decrypt("out"))
        eager_rows = (eager.last_transform_counts["forward_rows"]
                      + eager.last_transform_counts["inverse_rows"])
        resident_rows = (resident.last_transform_counts["forward_rows"]
                         + resident.last_transform_counts["inverse_rows"])
        assert resident_rows < eager_rows
        assert resident.telemetry["ntt_resident"] is True
        assert resident.telemetry["total"]["forward_rows"] >= \
            resident.last_transform_counts["forward_rows"]

    def test_outputs_leave_in_coefficient_domain(self):
        params = mini(t=257)
        session = Session(params, seed=23)
        a = session.encrypt([1, 2, 3])
        program = session.compile(a.rotate(1) * 2, name="resident-out")
        result = LocalBackend(session, ntt_resident=True).run(program)
        ct = result.handle("out").ciphertext
        assert not ct.ntt_resident
        ct.to_bytes()  # serialisable without conversion

    def test_plain_pool_caches_constant_transforms(self):
        params = mini(t=257)
        session = Session(params, seed=25)
        plain = session.encode(7)
        first = session.plain_ntt(plain)
        assert session.plain_ntt(plain) is first
        delta_first = session.plain_delta_ntt(plain)
        assert session.plain_delta_ntt(plain) is delta_first

    def test_resident_rotation_bit_exact(self):
        params = mini(t=257)
        session = Session(params, seed=27)
        context = session.context
        engine = GaloisEngine(context)
        keys = session.keys
        rot = engine.rotation_keygen(keys.secret, [2])
        ct = session.encrypt([5, 6, 7]).ciphertext
        eager = engine.apply(ct, rot[2])
        resident = context.to_coeff_ct(
            engine.apply_resident(context.to_ntt_ct(ct), rot[2])
        )
        assert np.array_equal(eager.c0.residues, resident.c0.residues)
        assert np.array_equal(eager.c1.residues, resident.c1.residues)


class TestNarrowPrimeFallbacks:
    def test_lift_narrow_primes_stay_exact(self):
        """Primes below 30 bits have >60-significant-bit reciprocals,
        which the lift gemm's four 15-bit limbs cannot carry — the
        context must route them to the reference loop (regression for
        the gemm_safe guard)."""
        from repro.nttmath.primes import find_ntt_primes
        from repro.rns.basis import lift_context
        from repro.rns.lift import lift_hps, lift_hps_reference

        n = 64
        source = tuple(find_ntt_primes(28, n, 3))
        target = source + tuple(find_ntt_primes(29, n, 2))
        ctx = lift_context(source, target)
        assert not ctx.gemm_safe
        rng = np.random.default_rng(31)
        mat = rng.integers(
            0, np.array(source, dtype=np.int64)[:, None], size=(3, n)
        )
        assert np.array_equal(lift_hps(ctx, mat),
                              lift_hps_reference(ctx, mat))
