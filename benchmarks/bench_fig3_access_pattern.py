"""Paper Fig. 3: memory access pattern of the two-core NTT.

Regenerates the figure's content — the per-stage read address sequences
of both butterfly cores at n = 4096 — checks the conflict-freedom
property the figure exists to demonstrate, and renders the same three
regimes the paper draws (index gap 512, the m = 2048 inversion, and the
in-place final iteration).
"""

import numpy as np

from conftest import save_result

from repro.hw.config import HardwareConfig
from repro.hw.ntt_unit import DualCoreNttUnit, NttSchedule
from repro.nttmath.ntt import NegacyclicTransformer
from repro.params import hpca19


def test_fig3_access_pattern(benchmark):
    schedule = NttSchedule(4096, 2)

    def build_all_stages():
        return [
            schedule.stage_access(stage, pipeline_depth=11)
            for stage in range(1, 13)
        ]

    accesses = benchmark(build_all_stages)

    lines = ["FIG. 3 — MEMORY ACCESS DURING TWO-CORE NTT (n = 4096)"]
    for access in accesses:
        reads0 = [w for _, w in access.reads[0][:4]]
        reads1 = [w for _, w in access.reads[1][:4]]
        m = 2 << (access.stage - 1)
        lines.append(
            f"iteration m = {m:<6} core1 reads: "
            f"{', '.join(map(str, reads0))}, ...   core2 reads: "
            f"{', '.join(map(str, reads1))}, ..."
        )
    lines += [
        "",
        "paper's printed sequences for m = 2048:",
        "  core1: 0, 1024, 1, 1025, ...   core2: 1536, 512, 1537, 513, ...",
    ]
    save_result("fig3_access_pattern", "\n".join(lines))

    # The figure's exact m = 2048 sequences.
    stage11 = accesses[10]
    assert [w for _, w in stage11.reads[0][:4]] == [0, 1024, 1, 1025]
    assert [w for _, w in stage11.reads[1][:4]] == [1536, 512, 1537, 513]
    # Block-exclusive regimes before and after.
    assert [w for _, w in accesses[9].reads[0][:2]] == [0, 1]
    assert [w for _, w in accesses[9].reads[1][:2]] == [1024, 1025]
    assert [w for _, w in accesses[11].reads[0][:2]] == [0, 1]


def test_fig3_conflict_freedom(benchmark):
    """No cycle has two accesses to the same block's same port."""
    schedule = NttSchedule(4096, 2)

    def check_all_stages():
        violations = 0
        for stage in range(1, 13):
            access = schedule.stage_access(stage, pipeline_depth=11)
            for stamped in (access.reads, access.writes):
                seen = set()
                for core_accesses in stamped:
                    for cycle, word in core_accesses:
                        key = (cycle, word >= schedule.block)
                        if key in seen:
                            violations += 1
                        seen.add(key)
        return violations

    assert benchmark(check_all_stages) == 0


def test_fig3_schedule_is_executable(benchmark):
    """The scheduled NTT computes the correct transform at full size."""
    params = hpca19()
    prime = params.q_primes[0]
    unit = DualCoreNttUnit(4096, prime, HardwareConfig())
    reference = NegacyclicTransformer(4096, prime)
    rng = np.random.default_rng(8)
    values = rng.integers(0, prime, 4096)

    result, cycles = benchmark.pedantic(unit.run_fast, args=(values,),
                                        rounds=1, iterations=1)
    assert np.array_equal(result, reference.forward(values))
    # 12 stages x 1024 issue cycles + overheads: the Table II NTT row.
    assert 12_288 < cycles < 16_000
