"""Paper Sec. VI-C (power) and the Sec. VI-E efficiency comparison.

Static 5.3 W; +2.2 W dynamic for one busy coprocessor; +3.4 W for two;
8.7 W peak against the i5's ~40 W under load.
"""

from conftest import format_row, save_result

from repro.hw.config import HardwareConfig
from repro.hw.power import PowerModel
from repro.system.baseline import SoftwareBaseline
from repro.system.server import CloudServer
from repro.system.workloads import JobKind

PAPER = {
    "static": 5.3,
    "dynamic_1": 2.2,
    "dynamic_2": 3.4,
    "peak": 8.7,
    "i5_load": 40.0,
}


def test_power_rows(benchmark, paper_params):
    power = PowerModel(HardwareConfig())

    def rows():
        return (power.static_watts(), power.dynamic_watts(1),
                power.dynamic_watts(2), power.peak_watts())

    static, dyn1, dyn2, peak = benchmark(rows)
    lines = [
        "SEC. VI-C — POWER CONSUMPTION",
        f"{'metric':<34} {'measured':>14} {'paper':>14} {'delta':>8}",
        format_row("static (W)", static, PAPER["static"], "W"),
        format_row("dynamic, 1 coprocessor (W)", dyn1, PAPER["dynamic_1"],
                   "W"),
        format_row("dynamic, 2 coprocessors (W)", dyn2,
                   PAPER["dynamic_2"], "W"),
        format_row("peak (W)", peak, PAPER["peak"], "W"),
    ]
    save_result("power", "\n".join(lines))
    assert static == PAPER["static"]
    assert abs(dyn1 - PAPER["dynamic_1"]) < 1e-9
    assert abs(dyn2 - PAPER["dynamic_2"]) < 1e-9
    assert abs(peak - PAPER["peak"]) < 1e-9


def test_energy_per_mult_beats_i5(benchmark, paper_params):
    """Energy per Mult: FPGA at peak vs the i5 at 40 W load."""
    config = HardwareConfig()
    power = PowerModel(config)
    server = CloudServer(paper_params, config)
    baseline = SoftwareBaseline(paper_params)

    def energies():
        fpga_seconds = server.job_seconds(JobKind.MULT) \
            / config.num_coprocessors
        fpga = power.peak_watts() * fpga_seconds
        i5 = PAPER["i5_load"] * baseline.mult_seconds()
        return fpga, i5

    fpga_joules, i5_joules = benchmark(energies)
    lines = [
        "ENERGY PER HOMOMORPHIC MULTIPLICATION",
        f"this work: {fpga_joules * 1e3:.1f} mJ   "
        f"i5 + NFLlib: {i5_joules * 1e3:.1f} mJ   "
        f"advantage: {i5_joules / fpga_joules:.0f}x",
    ]
    save_result("power_energy_per_mult", "\n".join(lines))
    assert i5_joules / fpga_joules > 20
