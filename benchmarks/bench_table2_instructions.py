"""Paper Table II: per-instruction cycle counts and call counts per Mult.

The instruction timings come out of an actually-executed Mult on the
cycle-level coprocessor model; the call counts come from the compiled
program. Both are printed next to the paper's measurements.
"""

import pytest

from conftest import format_row, save_result

from repro.hw.isa import Opcode

PAPER_TABLE2 = {
    Opcode.NTT: (14, 87_582),
    Opcode.INTT: (8, 102_043),
    Opcode.CMUL: (20, 15_662),
    Opcode.CADD: (26, 16_292),
    Opcode.REARRANGE: (22, 25_006),
    Opcode.LIFT: (4, 99_137),
    Opcode.SCALE: (3, 99_274),
}

#: Rows where our compiler's bookkeeping differs from the paper's
#: (documented in EXPERIMENTS.md): our CADD count is 16 because the
#: paper's 26 includes accumulator initialisations we fold into CMUL.
CALL_COUNT_EXEMPT = {Opcode.CADD}


@pytest.fixture(scope="module")
def executed_report(paper_coprocessor, paper_ciphertexts, paper_keys):
    ct1, ct2 = paper_ciphertexts
    _, report = paper_coprocessor.mult(ct1, ct2, paper_keys.relin)
    return report


def test_table2_instruction_timings(benchmark, paper_coprocessor,
                                    executed_report):
    model = benchmark(paper_coprocessor.instruction_cycle_model)
    config = paper_coprocessor.config
    lines = [
        "TABLE II — PERFORMANCE OF INDIVIDUAL INSTRUCTIONS",
        f"{'instruction':<34} {'measured':>14} {'paper':>14} {'delta':>8}"
        "   (Arm cycles per call)",
    ]
    for op, (_, paper_cycles) in PAPER_TABLE2.items():
        arm = config.fpga_to_arm_cycles(model[op])
        lines.append(format_row(op.value, arm, paper_cycles))
        assert abs(arm - paper_cycles) / paper_cycles < 0.10, op
    save_result("table2_instruction_timings", "\n".join(lines))


def test_table2_call_counts(benchmark, paper_params, paper_coprocessor,
                            executed_report):
    from repro.hw.compiler import compile_mult

    program = benchmark(compile_mult, paper_params,
                        paper_coprocessor.config)
    histogram = program.opcode_histogram()
    lines = [
        "TABLE II — INSTRUCTION CALLS PER MULT",
        f"{'instruction':<34} {'ours':>8} {'paper':>8}",
    ]
    for op, (paper_calls, _) in PAPER_TABLE2.items():
        ours = histogram.get(op, 0)
        lines.append(f"{op.value:<34} {ours:>8} {paper_calls:>8}")
        if op not in CALL_COUNT_EXEMPT:
            assert ours == paper_calls, op
    save_result("table2_call_counts", "\n".join(lines))


def test_table2_executed_timings_match_model(benchmark, executed_report,
                                             paper_coprocessor):
    """The per-call costs measured from the executed Mult equal the
    analytic instruction model (the simulator has no hidden state)."""
    model = benchmark(paper_coprocessor.instruction_cycle_model)
    for op, stat in executed_report.op_stats.items():
        if op in model:
            assert stat.cycles_per_call == pytest.approx(model[op]), op


def test_table2_scale_equals_lift(benchmark, executed_report):
    """The paper's observation: Scale ~ Lift despite doing more work,
    thanks to the block-level pipeline."""
    lift, scale = benchmark(
        lambda: (executed_report.op_stats[Opcode.LIFT].cycles_per_call,
                 executed_report.op_stats[Opcode.SCALE].cycles_per_call)
    )
    assert abs(scale - lift) / lift < 0.02
