"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation flips one design decision of the paper and quantifies its
cost with the cycle model:

* twiddle ROM vs on-the-fly twiddles (the 20% bubble penalty, Sec. V-A4);
* two butterfly cores per RPAU vs one (the Fig. 3 dual-core scheme);
* relinearisation keys streamed vs pinned on-chip (the ~30% transfer
  share of Table I and the paper's 'larger FPGA' remark);
* sliding-window reduction vs Barrett (multiplier cost, Sec. V-A4).
"""

from dataclasses import replace

from conftest import save_result

from repro.hw.config import HardwareConfig
from repro.hw.modred import BarrettReducer, SlidingWindowReducer
from repro.hw.ntt_unit import DualCoreNttUnit
from repro.system.server import CloudServer

BASE = HardwareConfig()


def test_ablation_twiddle_rom(benchmark, paper_params):
    """Storing twiddles buys back the ~20% bubble loss of prior work."""
    prime = paper_params.q_primes[0]

    def cycle_pair():
        with_rom = DualCoreNttUnit(4096, prime, BASE).transform_cycles()
        without = DualCoreNttUnit(
            4096, prime, replace(BASE, twiddle_rom=False)
        ).transform_cycles()
        return with_rom, without

    with_rom, without = benchmark(cycle_pair)
    penalty = without / with_rom - 1
    save_result(
        "ablation_twiddle_rom",
        "ABLATION — TWIDDLE ROM (Sec. V-A4)\n"
        f"NTT with ROM:    {with_rom} FPGA cycles\n"
        f"NTT without ROM: {without} FPGA cycles "
        f"({penalty * 100:.1f}% bubble penalty; prior work [20] lost 20%)",
    )
    assert 0.10 < penalty < 0.25


def test_ablation_butterfly_cores(benchmark, paper_params):
    """The dual-core scheme nearly halves NTT latency."""
    prime = paper_params.q_primes[0]

    def cycle_pair():
        dual = DualCoreNttUnit(4096, prime, BASE).transform_cycles()
        single = DualCoreNttUnit(
            4096, prime, replace(BASE, butterfly_cores_per_rpau=1)
        ).transform_cycles()
        return dual, single

    dual, single = benchmark(cycle_pair)
    save_result(
        "ablation_butterfly_cores",
        "ABLATION — BUTTERFLY CORES PER RPAU (Sec. V-A2/V-A3)\n"
        f"two cores: {dual} FPGA cycles per NTT\n"
        f"one core:  {single} FPGA cycles per NTT "
        f"(speedup {single / dual:.2f}x of the ideal 2x)",
    )
    assert 1.5 < single / dual <= 2.0


def test_ablation_relin_key_placement(benchmark, paper_params):
    """Streaming the key costs ~25-30% of Mult; pinning removes it."""
    streamed = CloudServer(paper_params, BASE)
    pinned = CloudServer(paper_params,
                         replace(BASE, relin_key_on_chip=True))

    def mult_pair():
        return (streamed.mult_compute_seconds(),
                pinned.mult_compute_seconds())

    with_stream, with_pin = benchmark(mult_pair)
    share = 1 - with_pin / with_stream
    save_result(
        "ablation_relin_key",
        "ABLATION — RELINEARISATION KEY PLACEMENT (Table I discussion)\n"
        f"keys streamed from DDR: {with_stream * 1e3:.3f} ms per Mult\n"
        f"keys pinned on-chip:    {with_pin * 1e3:.3f} ms per Mult\n"
        f"transfer share removed: {share * 100:.0f}% (paper: ~30%)",
    )
    assert 0.15 < share < 0.40


def test_ablation_reduction_circuit(benchmark, paper_params):
    """Sliding-window reduction avoids Barrett's two extra multipliers
    at the price of a 64-entry ROM per prime."""
    prime = paper_params.q_primes[0]

    def build_both():
        sliding = SlidingWindowReducer(prime)
        barrett = BarrettReducer(prime)
        return sliding, barrett

    sliding, barrett = benchmark(build_both)
    save_result(
        "ablation_reduction",
        "ABLATION — MODULAR REDUCTION CIRCUIT (Sec. V-A4)\n"
        f"sliding window: {sliding.pipeline_stages} pipeline stages, "
        f"{sliding.table_entries}-entry ROM, 0 extra multipliers\n"
        f"Barrett:        {barrett.extra_multipliers} extra wide "
        "multipliers per butterfly (8 extra DSPs each)",
    )
    assert barrett.extra_multipliers == 2
    # Identical functional behaviour on a sample.
    for value in (0, 1, prime - 1, (prime - 1) ** 2):
        assert sliding.reduce(value) == barrett.reduce(value)


def test_ablation_rotation_cost(benchmark, paper_params):
    """Extension: what a Galois rotation costs on the paper's datapath.

    A rotation is two permutation passes plus a relin-shaped key switch;
    at the paper's parameter set it comes to ~0.5x a Mult, dominated by
    the same key streaming.
    """
    from repro.fv.encoder import BatchEncoder
    from repro.fv.galois import GaloisEngine, rotation_element
    from repro.fv.scheme import FvContext
    from repro.hw.coprocessor import Coprocessor
    from repro.params import hpca19

    params = hpca19(t=65537)
    context = FvContext(params, seed=7)
    keys = context.keygen()
    engine = GaloisEngine(context)
    galois_key = engine.keygen(keys.secret,
                               rotation_element(1, params.n))
    encoder = BatchEncoder(params)
    import numpy as np

    ct = context.encrypt(
        encoder.encode(np.arange(params.n) % params.t), keys.public
    )
    coprocessor = Coprocessor(params)

    def run_rotation():
        return coprocessor.rotate(ct, galois_key)

    result, report = benchmark.pedantic(run_rotation, rounds=1,
                                        iterations=1)
    _, mult_report = coprocessor.mult(ct, ct, keys.relin)
    ratio = report.total_cycles / mult_report.total_cycles
    save_result(
        "ablation_rotation",
        "EXTENSION — GALOIS ROTATION ON THE PAPER'S ISA\n"
        f"rotation: {report.seconds * 1e3:.3f} ms "
        f"({report.arm_cycles:,} Arm cycles)\n"
        f"Mult:     {mult_report.seconds * 1e3:.3f} ms  "
        f"-> rotation costs {ratio:.2f}x a Mult",
    )
    assert 0.3 < ratio < 0.8


def test_ablation_hps_vs_traditional_conversions(benchmark, paper_params):
    """The HPS method is ~10-20x faster on Lift/Scale throughput."""
    from repro.hw.lift_unit import HpsLiftUnit, TraditionalLiftUnit
    from repro.rns.basis import lift_context

    ctx = lift_context(paper_params.q_primes, paper_params.p_primes)

    def cycles_pair():
        hps = HpsLiftUnit(ctx, BASE).cycles(4096)
        trad = TraditionalLiftUnit(
            ctx, replace(BASE, use_hps=False)
        ).cycles(4096)
        return hps, trad

    hps, trad = benchmark(cycles_pair)
    save_result(
        "ablation_hps_lift",
        "ABLATION — HPS VS TRADITIONAL-CRT LIFT (Sec. IV-C)\n"
        f"HPS lift (2 cores):         {hps} FPGA cycles\n"
        f"traditional lift (2 cores): {trad} FPGA cycles "
        f"({trad / hps:.1f}x slower)",
    )
    assert trad / hps > 10
