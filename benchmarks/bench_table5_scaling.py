"""Paper Table V: estimated results for larger parameter sets.

Applies the paper's Sec. VI-D iterative scaling rule starting from our
modelled single-coprocessor design point and prints the four rows.
"""

from conftest import save_result

from repro.hw.config import HardwareConfig
from repro.hw.resources import ResourceEstimator
from repro.hw.scaling import scaling_table
from repro.system.server import CloudServer

# (n, log q) -> (compute ms, comm ms, total ms) from the paper.
PAPER_ROWS = {
    (4096, 180): (4.46, 0.54, 5.0),
    (8192, 360): (9.68, 2.16, 11.9),
    (16384, 720): (21.0, 8.64, 29.6),
    (32768, 1440): (45.6, 34.6, 80.2),
}


def test_table5_scaling_estimates(benchmark, paper_params):
    config = HardwareConfig()
    server = CloudServer(paper_params, config)
    base_resources = ResourceEstimator(paper_params,
                                       config).single_coprocessor()
    base_compute = server.mult_compute_seconds()
    base_comm = (server.transfer_in_seconds()
                 + server.transfer_out_seconds())

    points = benchmark(scaling_table, base_resources, base_compute,
                       base_comm)

    lines = [
        "TABLE V — ESTIMATED RESULTS FOR DIFFERENT PARAMETER SETS "
        "(single coprocessor)",
        f"{'(n, log q)':<16}{'LUT/Reg/BRAM/DSP':<26}"
        f"{'Comp/Comm/Total (ours)':<26}{'paper'}",
    ]
    for point in points:
        paper = PAPER_ROWS[(point.n, point.log2_q)]
        r = point.resources
        lines.append(
            f"(2^{point.n.bit_length() - 1}, {point.log2_q:<6}) "
            f"{r.luts // 1000}K/{r.regs // 1000}K/"
            f"{r.bram36 / 1000:.1f}K/{r.dsps / 1000:.1f}K"
            f"{'':<6}"
            f"{point.compute_seconds * 1e3:.2f}/"
            f"{point.comm_seconds * 1e3:.2f}/"
            f"{point.total_seconds * 1e3:.1f} ms"
            f"{'':<6}{paper[0]}/{paper[1]}/{paper[2]} ms"
        )
    save_result("table5_scaling", "\n".join(lines))

    for point in points:
        paper_compute, paper_comm, paper_total = \
            PAPER_ROWS[(point.n, point.log2_q)]
        assert abs(point.compute_seconds * 1e3 - paper_compute) \
            / paper_compute < 0.10
        assert abs(point.comm_seconds * 1e3 - paper_comm) \
            / paper_comm < 0.10
        assert abs(point.total_seconds * 1e3 - paper_total) \
            / paper_total < 0.10


def test_table5_second_point_executed_directly(benchmark):
    """Validation beyond the paper: *execute* the (2^13, 360-bit) point.

    The paper only extrapolates Table V; our simulator can run it. With
    grouped 60-bit relinearisation digits (constant component count, the
    assumption implicit in the paper's model) the measured Mult lands on
    the 9.68 ms estimate; with naive per-prime digits it would take
    ~15 ms — the scaling rule's hidden assumption, quantified.
    """
    from dataclasses import replace

    from repro.fv.encoder import Plaintext
    from repro.fv.scheme import FvContext
    from repro.hw.coprocessor import Coprocessor
    from repro.params import table5_large

    params = table5_large()
    context = FvContext(params, seed=3)
    keys = context.keygen()
    grouped = context.relin_keygen_grouped(keys.secret, 2)
    config = replace(HardwareConfig(), num_rpaus=13, lift_cores=4,
                     scale_cores=4)
    coprocessor = Coprocessor(params, config)
    plain = Plaintext.from_list([1, 1], params.n, params.t)
    ct = context.encrypt(plain, keys.public)

    def run_mult():
        return coprocessor.mult(ct, ct, grouped)

    result, report = benchmark.pedantic(run_mult, rounds=1, iterations=1)
    _, report_naive = coprocessor.mult(ct, ct, keys.relin)

    save_result(
        "table5_direct_validation",
        "TABLE V VALIDATION — (2^13, 360-bit) EXECUTED, NOT EXTRAPOLATED\n"
        f"simulated Mult (grouped digits):   {report.seconds * 1e3:.2f} ms"
        "   (paper estimate: 9.68 ms)\n"
        f"simulated Mult (per-prime digits): "
        f"{report_naive.seconds * 1e3:.2f} ms"
        "   (the scaling model's hidden assumption)",
    )
    assert abs(report.seconds - 9.68e-3) / 9.68e-3 < 0.05
    assert report_naive.seconds > report.seconds * 1.3
    decrypted = context.decrypt(result, keys.secret)
    assert decrypted.coeffs[0] == 1


def test_table5_largest_set_under_100ms(benchmark, paper_params):
    """The paper's HEPCloud comparison: a hypothetical large-FPGA build
    of this architecture computes the (2^15, 1440-bit) Mult in < 0.1 s
    where HEPCloud needs tens of seconds."""
    config = HardwareConfig()
    server = CloudServer(paper_params, config)
    base_resources = ResourceEstimator(paper_params,
                                       config).single_coprocessor()
    points = benchmark(
        scaling_table, base_resources, server.mult_compute_seconds(),
        server.transfer_in_seconds() + server.transfer_out_seconds(),
    )
    assert points[-1].total_seconds < 0.1
