"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
both prints it and writes it to ``benchmarks/results/<name>.txt`` so the
numbers survive pytest's output capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fv.encoder import Plaintext
from repro.fv.scheme import FvContext
from repro.hw.config import HardwareConfig
from repro.hw.coprocessor import Coprocessor
from repro.params import hpca19

RESULTS_DIR = Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


@pytest.fixture(scope="session")
def paper_params():
    return hpca19()


@pytest.fixture(scope="session")
def paper_context(paper_params):
    return FvContext(paper_params, seed=2019)


@pytest.fixture(scope="session")
def paper_keys(paper_context):
    return paper_context.keygen()


@pytest.fixture(scope="session")
def paper_ciphertexts(paper_context, paper_keys, paper_params):
    m1 = Plaintext.from_list([1, 1, 0, 1], paper_params.n, paper_params.t)
    m2 = Plaintext.from_list([1, 0, 1], paper_params.n, paper_params.t)
    ct1 = paper_context.encrypt(m1, paper_keys.public)
    ct2 = paper_context.encrypt(m2, paper_keys.public)
    return ct1, ct2


@pytest.fixture(scope="session")
def paper_coprocessor(paper_params):
    return Coprocessor(paper_params, HardwareConfig())


def relative_error(measured: float, paper: float) -> float:
    return (measured - paper) / paper


def format_row(label: str, measured, paper, unit: str = "") -> str:
    delta = relative_error(float(measured), float(paper)) * 100
    return (f"{label:<34} {measured:>14,.3f} {paper:>14,.3f} "
            f"{delta:>+7.1f}%  {unit}")
