"""Paper Table IV: FPGA resource utilisation on the ZCU102.

The structural estimator rebuilds both rows (two coprocessors +
interface, and a single coprocessor) from instance counts.
"""

from conftest import format_row, save_result

from repro.hw.config import HardwareConfig
from repro.hw.resources import ResourceEstimator

PAPER_FULL = {"luts": 133_692, "regs": 60_312, "bram36": 815, "dsps": 416}
PAPER_SINGLE = {"luts": 63_522, "regs": 25_622, "bram36": 388, "dsps": 208}
PAPER_FULL_PCT = {"luts": 49, "regs": 11, "bram36": 89, "dsps": 16}


def test_table4_resource_utilization(benchmark, paper_params):
    estimator = ResourceEstimator(paper_params, HardwareConfig())
    breakdown = benchmark(estimator.breakdown)
    full = breakdown["full_design"]
    single = breakdown["single_coprocessor"]

    lines = [
        "TABLE IV — RESOURCE UTILISATION (Zynq UltraScale+ ZCU102)",
        f"{'':<34} {'measured':>14} {'paper':>14} {'delta':>8}",
        "--- two coprocessors & interface ---",
        format_row("LUTs", full.luts, PAPER_FULL["luts"]),
        format_row("Registers", full.regs, PAPER_FULL["regs"]),
        format_row("BRAM36", full.bram36, PAPER_FULL["bram36"]),
        format_row("DSPs", full.dsps, PAPER_FULL["dsps"]),
        "--- single coprocessor ---",
        format_row("LUTs", single.luts, PAPER_SINGLE["luts"]),
        format_row("Registers", single.regs, PAPER_SINGLE["regs"]),
        format_row("BRAM36", single.bram36, PAPER_SINGLE["bram36"]),
        format_row("DSPs", single.dsps, PAPER_SINGLE["dsps"]),
        "--- utilisation of the device (two coprocessors) ---",
    ]
    pct = full.percentages()
    for key, paper_value in PAPER_FULL_PCT.items():
        lines.append(f"{key:<34} {pct[key]:>13.1f}% {paper_value:>13}%")
    save_result("table4_resources", "\n".join(lines))

    for key, paper_value in PAPER_FULL.items():
        assert abs(getattr(full, key) - paper_value) / paper_value < 0.10
    for key, paper_value in PAPER_SINGLE.items():
        assert abs(getattr(single, key) - paper_value) / paper_value < 0.10


def test_table4_memory_bound_design(benchmark, paper_params):
    """The paper's point: 'the design is constrained on memory size'."""
    estimator = ResourceEstimator(paper_params, HardwareConfig())
    full = benchmark(estimator.full_design)
    pct = full.percentages()
    assert pct["bram36"] == max(pct.values())
    assert pct["bram36"] > 80


def test_table4_component_breakdown(benchmark, paper_params):
    """Structural sanity: butterflies dominate DSPs, memory dominates BRAM."""
    estimator = ResourceEstimator(paper_params, HardwareConfig())
    breakdown = benchmark(estimator.breakdown)
    lines = ["TABLE IV SUPPLEMENT — per-subsystem breakdown (one coprocessor)",
             f"{'subsystem':<22}{'LUT':>10}{'FF':>10}{'BRAM36':>8}{'DSP':>6}"]
    for name in ("rpaus", "lift_cores", "scale_cores", "memory_file",
                 "control"):
        u = breakdown[name]
        lines.append(f"{name:<22}{u.luts:>10,}{u.regs:>10,}"
                     f"{u.bram36:>8}{u.dsps:>6}")
    save_result("table4_breakdown", "\n".join(lines))
    assert breakdown["memory_file"].bram36 == \
        breakdown["single_coprocessor"].bram36
    assert breakdown["rpaus"].dsps >= 56  # 14 butterflies x 4 DSP
