"""Render the BENCH_fv_ops.json trajectory as a markdown table.

The nightly bench workflow appends one record per run to the
trajectory file (see ``bench_fv_throughput.py``); this script reduces
the chain to a speedup-over-time table for the workflow summary::

    python benchmarks/render_trajectory.py \
        benchmarks/results/BENCH_fv_ops.json >> "$GITHUB_STEP_SUMMARY"

One row per record (oldest first): when it was measured, at which
commit, the headline Mult/Rotate speedups over ``per_row_mode``, and
the per-ring-degree Mult speedups of the sweep. Sweep columns union
over every record so old records (measured before a ring size was
supported) render blank cells instead of breaking the table. Exits
non-zero on a missing file; an empty trajectory renders a note, not
an empty table.

``fv_cores`` records (the cores-vs-throughput sweep) render as a
second, workers-vs-speedup table: one column per
``executor@workers n=...`` cell, values are Mult/s speedup over the
serial executor measured in the same run.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def render(records: list[dict]) -> str:
    cores_records = [r for r in records if "cores" in r]
    optim_records = [r for r in records if "optim" in r]
    fault_records = [r for r in records if "fault" in r]
    resident_records = [r for r in records if "resident" in r]
    records = [r for r in records
               if "cores" not in r and "optim" not in r
               and "fault" not in r and "resident" not in r]
    lines = ["## FV hot-path speedup trajectory", ""]
    if not records and not cores_records:
        lines.append("_No trajectory records yet._")
        return "\n".join(lines) + "\n"
    sweep_ns = sorted({point["n"] for record in records
                       for point in record.get("sweep", [])})
    header = (["date", "sha", "mode", "Mult", "Rotate"]
              + [f"Mult n={n}" for n in sweep_ns])
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    for record in records:
        meta = record.get("meta", {})
        by_n = {point["n"]: point for point in record.get("sweep", [])}
        row = [
            str(meta.get("recorded_at", "?")).split("T")[0],
            str(meta.get("git_sha", "?")),
            str(record.get("mode", "?")),
            _speedup(record.get("mult", {}).get("speedup")),
            _speedup(record.get("rotate", {}).get("speedup")),
        ] + [_speedup(by_n[n]["mult_speedup"]) if n in by_n else ""
             for n in sweep_ns]
        lines.append("| " + " | ".join(row) + " |")
    if records:
        latest = records[-1]
        eliminated = latest.get("program", {}).get("transforms_eliminated")
        if eliminated is not None:
            lines += ["", f"Latest record: NTT-resident executor "
                          f"eliminated {eliminated} row transforms on "
                          f"the benchmark program graph."]
    if cores_records:
        lines += ["", "### Workers vs speedup (Mult/s over serial)", ""]
        cells = sorted(
            {(p["executor"], p["workers"], p["n"])
             for record in cores_records for p in record["cores"]
             if p["executor"] != "serial"},
            key=lambda c: (c[0], c[1], c[2]),
        )
        header = (["date", "sha", "cores"]
                  + [f"{ex}@{w} n={n}" for ex, w, n in cells])
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for record in cores_records:
            meta = record.get("meta", {})
            by_cell = {(p["executor"], p["workers"], p["n"]):
                       p["speedup_vs_serial"] for p in record["cores"]}
            row = [
                str(meta.get("recorded_at", "?")).split("T")[0],
                str(meta.get("git_sha", "?")),
                str(record.get("available_cores", "?")),
            ] + [_speedup(by_cell[c]) if c in by_cell else ""
                 for c in cells]
            lines.append("| " + " | ".join(row) + " |")
    if optim_records:
        lines += ["", "### Optimiser pass stack "
                      "(keyswitches saved, makespan speedup)", ""]
        programs = sorted({p["program"] for record in optim_records
                           for p in record["optim"]})
        header = (["date", "sha"]
                  + [f"{name} ks" for name in programs]
                  + [f"{name} makespan" for name in programs])
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for record in optim_records:
            meta = record.get("meta", {})
            by_program = {p["program"]: p for p in record["optim"]}
            row = [
                str(meta.get("recorded_at", "?")).split("T")[0],
                str(meta.get("git_sha", "?")),
            ]
            for name in programs:
                point = by_program.get(name)
                row.append(_percent(point["keyswitch_reduction"])
                           if point else "")
            for name in programs:
                point = by_program.get(name)
                row.append(_speedup(point["makespan_speedup"])
                           if point else "")
            lines.append("| " + " | ".join(row) + " |")
    if resident_records:
        lines += ["", "### Resident Mult (evaluation-domain base "
                      "extension, zero round trips)", ""]
        resident_ns = sorted({p["n"] for record in resident_records
                              for p in record["resident"]})
        header = (["date", "sha"]
                  + [f"Mult n={n}" for n in resident_ns])
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for record in resident_records:
            meta = record.get("meta", {})
            by_n = {p["n"]: p for p in record["resident"]}
            row = [
                str(meta.get("recorded_at", "?")).split("T")[0],
                str(meta.get("git_sha", "?")),
            ] + [_speedup(by_n[n]["mult_speedup"]) if n in by_n else ""
                 for n in resident_ns]
            lines.append("| " + " | ".join(row) + " |")
    if fault_records:
        lines += ["", "### Fault tolerance (mid-run board kill)", ""]
        header = ["date", "sha", "fleet", "lost", "spilled", "retried",
                  "failovers", "availability", "p99 inflation"]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for record in fault_records:
            meta = record.get("meta", {})
            fault = record["fault"]
            row = [
                str(meta.get("recorded_at", "?")).split("T")[0],
                str(meta.get("git_sha", "?")),
                f"{fault.get('shards', '?')} boards / "
                f"R={fault.get('replicas', '?')}",
                str(fault.get("jobs_lost", "?")),
                str(fault.get("jobs_spilled", "?")),
                str(fault.get("jobs_retried", "?")),
                str(fault.get("failovers", "?")),
                _percent(fault.get("availability")),
                _speedup(fault.get("p99_inflation")),
            ]
            lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines) + "\n"


def _percent(value) -> str:
    return f"{value:.0%}" if isinstance(value, (int, float)) else ""


def _speedup(value) -> str:
    return f"{value:.2f}x" if isinstance(value, (int, float)) else ""


def main(argv: list[str]) -> int:
    path = Path(argv[1] if len(argv) > 1
                else "benchmarks/results/BENCH_fv_ops.json")
    # The nightly summary must render something useful on every run:
    # a missing, empty or unparsable trajectory is a note in the
    # summary (exit 0), not a red workflow step.
    if not path.is_file():
        print("## FV hot-path speedup trajectory\n\n"
              f"_No trajectory file at `{path}` yet — run the bench "
              "to record one._")
        return 0
    text = path.read_text().strip()
    if not text:
        print("## FV hot-path speedup trajectory\n\n"
              f"_Trajectory file `{path}` is empty — run the bench "
              "to record the first entry._")
        return 0
    try:
        loaded = json.loads(text)
    except json.JSONDecodeError as exc:
        print("## FV hot-path speedup trajectory\n\n"
              f"_Trajectory file `{path}` is not valid JSON "
              f"({exc}) — fix or regenerate it._")
        return 0
    records = loaded if isinstance(loaded, list) else [loaded]
    print(render(records), end="")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
