"""Render the BENCH_fv_ops.json trajectory as a markdown table.

The nightly bench workflow appends one record per run to the
trajectory file (see ``bench_fv_throughput.py``); this script reduces
the chain to a speedup-over-time table for the workflow summary::

    python benchmarks/render_trajectory.py \
        benchmarks/results/BENCH_fv_ops.json >> "$GITHUB_STEP_SUMMARY"

One row per record (oldest first): when it was measured, at which
commit, the headline Mult/Rotate speedups over ``per_row_mode``, and
the per-ring-degree Mult speedups of the sweep. Sweep columns union
over every record so old records (measured before a ring size was
supported) render blank cells instead of breaking the table. Exits
non-zero on a missing file; an empty trajectory renders a note, not
an empty table.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def render(records: list[dict]) -> str:
    lines = ["## FV hot-path speedup trajectory", ""]
    if not records:
        lines.append("_No trajectory records yet._")
        return "\n".join(lines) + "\n"
    sweep_ns = sorted({point["n"] for record in records
                       for point in record.get("sweep", [])})
    header = (["date", "sha", "mode", "Mult", "Rotate"]
              + [f"Mult n={n}" for n in sweep_ns])
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    for record in records:
        meta = record.get("meta", {})
        by_n = {point["n"]: point for point in record.get("sweep", [])}
        row = [
            str(meta.get("recorded_at", "?")).split("T")[0],
            str(meta.get("git_sha", "?")),
            str(record.get("mode", "?")),
            _speedup(record.get("mult", {}).get("speedup")),
            _speedup(record.get("rotate", {}).get("speedup")),
        ] + [_speedup(by_n[n]["mult_speedup"]) if n in by_n else ""
             for n in sweep_ns]
        lines.append("| " + " | ".join(row) + " |")
    latest = records[-1]
    eliminated = latest.get("program", {}).get("transforms_eliminated")
    if eliminated is not None:
        lines += ["", f"Latest record: NTT-resident executor eliminated "
                      f"{eliminated} row transforms on the benchmark "
                      f"program graph."]
    return "\n".join(lines) + "\n"


def _speedup(value) -> str:
    return f"{value:.2f}x" if isinstance(value, (int, float)) else ""


def main(argv: list[str]) -> int:
    path = Path(argv[1] if len(argv) > 1
                else "benchmarks/results/BENCH_fv_ops.json")
    if not path.is_file():
        print(f"trajectory file not found: {path}", file=sys.stderr)
        return 1
    loaded = json.loads(path.read_text())
    records = loaded if isinstance(loaded, list) else [loaded]
    print(render(records), end="")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
