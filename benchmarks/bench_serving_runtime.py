"""Serving-runtime benches: latency-vs-offered-load curves per policy.

The classic queueing signature the static scheduler could never show:
below the service rate (rho < 1) tail latency sits near the bare
service time; past it, the backlog — and with it p50/p99 — grows with
the length of the run. Each scheduling policy traces its own curve,
and DMA batching shifts the knee right by raising effective capacity.

Set ``REPRO_BENCH_FAST=1`` (the CI bench-smoke job does) to shrink the
sweeps; the result files record which mode produced them.
"""

import os

from conftest import save_result

from repro.serve import (
    BatchPolicy,
    FifoScheduler,
    ServingRuntime,
    ShortestJobFirstScheduler,
    WeightedFairScheduler,
    WorkStealingScheduler,
)
from repro.system.server import CloudServer
from repro.system.workloads import JobKind, mult_stream, poisson_stream

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
RHOS = (0.5, 0.9, 1.3) if FAST else (0.5, 0.7, 0.9, 1.1, 1.3)
POLICIES = {
    "fifo": FifoScheduler,
    "sjf": ShortestJobFirstScheduler,
    "wfq": WeightedFairScheduler,
    "steal": WorkStealingScheduler,
}
DURATION_SECONDS = 0.75 if FAST else 1.5
KNEE_SECONDS = 0.6 if FAST else 1.0
MODE = "fast" if FAST else "full"


def run_curve(server, policy_cls, batching=None):
    capacity = server.mult_throughput_per_second()
    curve = {}
    for rho in RHOS:
        jobs = poisson_stream(rho * capacity, DURATION_SECONDS, seed=17)
        runtime = ServingRuntime.for_server(
            server, scheduler=policy_cls(), batching=batching
        )
        report = runtime.run(jobs)
        curve[rho] = report.latency_summary()
    return curve


def test_latency_vs_offered_load(benchmark, paper_params):
    server = CloudServer(paper_params)
    capacity = server.mult_throughput_per_second()

    curves = benchmark.pedantic(
        lambda: {name: run_curve(server, cls)
                 for name, cls in POLICIES.items()},
        rounds=1, iterations=1,
    )

    lines = [
        f"EXTENSION — SERVING RUNTIME: LATENCY vs OFFERED LOAD "
        f"({MODE} mode)",
        f"service capacity: {capacity:.0f} Mult/s "
        f"(Poisson arrivals over {DURATION_SECONDS:.1f} s, per policy)",
        f"{'policy':<8}" + "".join(f"rho={rho:<11}" for rho in RHOS),
    ]
    for name, curve in curves.items():
        lines.append(
            f"{name:<8}"
            + "".join(f"{curve[rho].p99 * 1e3:7.1f} ms   " for rho in RHOS)
        )
    lines.append("(cells are p99 latency; the knee at rho=1 is the "
                 "queueing-theory signature. Homogeneous single-tenant "
                 "Mult traffic makes all policies coincide — they "
                 "differentiate on mixed/multi-tenant streams, see "
                 "`python -m repro serve`)")
    save_result("serving_latency_curves", "\n".join(lines))

    # Acceptance: p99 diverges past the service rate for >= 3 policies.
    diverging = [
        name for name, curve in curves.items()
        if curve[1.3].p99 > 5 * curve[0.5].p99
    ]
    assert len(diverging) >= 3, diverging
    # Below the knee every policy keeps p99 within a few service times.
    service = server.job_seconds(JobKind.MULT)
    for name, curve in curves.items():
        assert curve[0.5].p99 < 10 * service, name


def test_batching_shifts_the_knee(benchmark, paper_params):
    """DMA trains raise Add capacity ~15%, moving the knee right.

    Add jobs are transfer-dominated (the 26 us compute rides on 542 us
    of DMA, 86 us of which is Arm setup), so coalescing uploads buys
    real capacity there — unlike Mult, where setup is ~2% of service.
    An Add stream offered just past the unbatched service rate
    diverges without batching and keeps up with trains of 8.
    """
    server = CloudServer(paper_params)
    add_capacity = (server.config.num_coprocessors
                    / server.job_seconds(JobKind.ADD))
    jobs = poisson_stream(1.08 * add_capacity, KNEE_SECONDS,
                          kind=JobKind.ADD, seed=23)

    def compare():
        plain = ServingRuntime.for_server(server).run(jobs)
        batched = ServingRuntime.for_server(
            server, batching=BatchPolicy(max_jobs=8)
        ).run(jobs)
        return plain, batched

    plain, batched = benchmark.pedantic(compare, rounds=1, iterations=1)
    lines = [
        "EXTENSION — DMA BATCHING AT THE KNEE "
        f"(Add stream at 1.08x unbatched capacity, {MODE} mode)",
        f"unbatched capacity {add_capacity:6.0f} Add/s; offered "
        f"{1.08 * add_capacity:6.0f}/s for {KNEE_SECONDS} s "
        f"({len(jobs)} jobs)",
        f"unbatched: p99 = {plain.latency_summary().p99 * 1e3:8.1f} ms, "
        f"throughput = {plain.throughput_per_second():6.0f}/s",
        f"trains<=8: p99 = {batched.latency_summary().p99 * 1e3:8.1f} ms, "
        f"throughput = {batched.throughput_per_second():6.0f}/s, "
        f"mean train = {batched.telemetry.mean_batch_size():.1f} jobs",
        "(one Arm DMA setup per descriptor train instead of per "
        "polynomial burst)",
    ]
    save_result("serving_batching_knee", "\n".join(lines))
    assert batched.latency_summary().p99 < plain.latency_summary().p99
    assert batched.throughput_per_second() > \
        plain.throughput_per_second()


def test_saturated_event_engine_matches_headline(benchmark, paper_params):
    """The event engine reproduces the 400 Mult/s within 1%."""
    server = CloudServer(paper_params)

    def saturate():
        return ServingRuntime.for_server(server).run(mult_stream(200))

    report = benchmark.pedantic(saturate, rounds=1, iterations=1)
    analytic = server.mult_throughput_per_second()
    measured = report.throughput_per_second()
    save_result(
        "serving_saturated_headline",
        "EXTENSION — EVENT ENGINE vs ANALYTIC HEADLINE\n"
        f"event-engine saturated throughput: {measured:6.1f} Mult/s\n"
        f"analytic (paper headline):         {analytic:6.1f} Mult/s\n"
        f"relative error: {abs(measured - analytic) / analytic:.4%}",
    )
    assert abs(measured - analytic) / analytic < 0.01
