"""Extension benches: the depth-4 claim and the network-path analysis.

* Sec. III-A depth claim: the analytic noise model predicts, and a real
  encrypted computation confirms, that the (n=4096, 180-bit q) set
  sustains at least four multiplicative levels.
* Fig. 11 network core: end-to-end client round trips over the modelled
  gigabit Ethernet path, exposing where the network (not the FPGA)
  becomes the bottleneck and how application-level batching restores the
  400 Mult/s.
"""

import pytest

from conftest import save_result

from repro.fv.encoder import Plaintext
from repro.fv.evaluator import Evaluator
from repro.fv.noise import noise_budget_bits
from repro.fv.noise_model import NoiseModel
from repro.system.network import ClientSession, NetworkModel
from repro.system.server import CloudServer


def test_depth4_analytic_and_measured(benchmark, paper_params,
                                      paper_context, paper_keys):
    model = NoiseModel(paper_params)
    evaluator = Evaluator(paper_context)
    plain = Plaintext.from_list([1], paper_params.n, paper_params.t)

    def run_depth4():
        ct = paper_context.encrypt(plain, paper_keys.public)
        budgets = []
        for _ in range(4):
            ct = evaluator.multiply(ct, ct, paper_keys.relin)
            budgets.append(
                noise_budget_bits(paper_context, ct, paper_keys.secret)
            )
        decrypted = paper_context.decrypt(ct, paper_keys.secret)
        correct = bool(decrypted.coeffs[0] == 1
                       and not decrypted.coeffs[1:].any())
        return budgets, correct

    budgets, correct = benchmark.pedantic(run_depth4, rounds=1,
                                          iterations=1)
    lines = [
        "SEC. III-A — MULTIPLICATIVE DEPTH 4 (paper's sizing claim)",
        f"analytic worst-case depth: {model.supported_depth()} "
        "(claim: >= 4)",
        "measured budgets after each level: "
        + ", ".join(f"{b:.1f}" for b in budgets) + " bits",
        f"depth-4 result decrypts correctly: {correct}",
    ]
    save_result("depth4_claim", "\n".join(lines))
    assert model.supported_depth() >= 4
    assert correct
    assert all(b > 0 for b in budgets)


def test_network_path_analysis(benchmark, paper_params):
    server = CloudServer(paper_params)
    client = ClientSession(paper_params, server)

    def analyse():
        trip = client.mult_round_trip()
        return (trip, client.network_bound_throughput(),
                client.effective_throughput(),
                client.batched_throughput(4))

    trip, net_rate, effective, batched = benchmark(analyse)
    lines = [
        "EXTENSION — CLIENT NETWORK PATH (Fig. 11 'Networking Arm Core')",
        f"one Mult round trip: {trip.upload_seconds * 1e3:.2f} up + "
        f"{trip.server_seconds * 1e3:.2f} server + "
        f"{trip.download_seconds * 1e3:.2f} down = "
        f"{trip.total_seconds * 1e3:.2f} ms",
        f"network-fed throughput (1 GbE, one-shot jobs): {net_rate:.0f}/s",
        f"FPGA throughput: {server.mult_throughput_per_second():.0f}/s "
        "-> one-shot deployment is NETWORK bound",
        f"with 4 server-side ops per upload: {batched:.0f}/s "
        "(FPGA bound again)",
    ]
    save_result("network_path", "\n".join(lines))
    assert client.is_network_bound()
    assert batched == pytest.approx(server.mult_throughput_per_second())


def test_network_crossover_bandwidth(benchmark, paper_params):
    """Find the bandwidth where the bottleneck crosses over to the FPGA."""
    server = CloudServer(paper_params)

    def crossover():
        for mbps in range(500, 5001, 100):
            network = NetworkModel(
                bandwidth_bytes_per_sec=mbps * 1e6 / 8 * 0.70
            )
            client = ClientSession(paper_params, server, network)
            if not client.is_network_bound():
                return mbps
        return None

    mbps = benchmark(crossover)
    save_result(
        "network_crossover",
        "EXTENSION — BANDWIDTH CROSSOVER\n"
        f"the FPGA becomes the bottleneck above ~{mbps} Mbit/s of "
        "client bandwidth\n(2 x 196,608-byte operands per one-shot Mult)",
    )
    assert mbps is not None
    assert 1000 < mbps <= 4000
