"""Resident-loop Mult: NTT-domain base extension vs the per-row path.

The resident-loop PR closes the last coefficient-domain excursion of
the multiply datapath: operands arrive NTT-resident, the base
extension runs in the evaluation domain (:func:`repro.rns.lift
.lift_hps_ntt` folds the one INTT the HPS quotient estimate needs into
a stacked scaled gemm plan), and the relinearisation fold emits an
NTT-resident product. This bench measures that full resident Mult —
resident inputs, ``resident=True`` output — against the pre-batching
``per_row_mode`` baseline across the ring-degree support matrix, with
three correctness gates before any timing:

* the resident product converts bit-for-bit to the per-row reference;
* both decrypt to the same plaintext;
* the transform telemetry records **zero** coefficient round trips for
  the resident multiply (the PR's acceptance criterion).

Protocol and trajectory plumbing mirror ``bench_fv_throughput.py``:
min/min interleaved gc-disabled rounds, one ``resident`` record
appended per run to ``BENCH_fv_ops.json`` (``_fast`` in smoke mode).
The full-mode gate asserts the resident Mult speedup stays above the
PR 5 large-ring floor (>= 3.6x at n >= 16384); fast mode keeps a
conservative floor so a busy CI runner cannot flake.
"""

import gc
import os
import time
from pathlib import Path

import numpy as np
from bench_fv_throughput import (
    append_trajectory_record,
    min_time,
    run_metadata,
)
from conftest import RESULTS_DIR, save_result

from repro.fv.encoder import Plaintext
from repro.fv.evaluator import Evaluator
from repro.fv.scheme import FvContext
from repro.nttmath.batch import (
    batched_engine_ok,
    per_row_mode,
    transform_counts,
)
from repro.params import large_ring

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
MODE = "fast" if FAST else "full"
SWEEP_NS = (4096, 8192) if FAST else (4096, 8192, 16384, 32768)
RESIDENT_REPS = 2 if FAST else 3
PER_ROW_REPS = 1
ROUNDS = 1 if FAST else 2
TARGET = 3.6
#: Full-mode regression gate at large rings — the PR 5 sweep floor the
#: resident path must not regress below. Fast mode (CI smoke) uses a
#: conservative floor; single-digit samples cannot gate 3.6x reliably.
LARGE_RING_FLOOR = 2.0 if FAST else 3.6
SMALL_RING_FLOOR = 2.0 if FAST else 2.5


def resident_point(n: int) -> dict:
    """Fully resident Mult vs ``per_row_mode`` at one ring degree."""
    params = large_ring(n)
    assert batched_engine_ok(params.q_primes + params.p_primes, n), (
        f"gemm engine must serve the full tensor basis at n={n}"
    )
    context = FvContext(params, seed=2019)
    keys = context.keygen()
    evaluator = Evaluator(context)
    assert evaluator.resident_tensor_ok, (
        f"evaluation-domain tensor path must serve n={n}"
    )
    m1 = Plaintext.from_list([1, 1, 0, 1], params.n, params.t)
    m2 = Plaintext.from_list([1, 0, 1], params.n, params.t)
    ct1 = context.encrypt(m1, keys.public)
    ct2 = context.encrypt(m2, keys.public)
    r1 = context.to_ntt_ct(ct1)
    r2 = context.to_ntt_ct(ct2)

    def resident_mult():
        return evaluator.multiply(r1, r2, keys.relin, resident=True)

    # Correctness gates: bit-exact conversion to the per-row
    # reference, decrypt equality, zero coefficient round trips.
    before = transform_counts()
    resident_out = resident_mult()
    delta = {k: v - before[k] for k, v in transform_counts().items()}
    assert delta["roundtrip_rows"] == 0 and delta["roundtrip_calls"] == 0, (
        f"resident Mult at n={n} performed coefficient round trips: "
        f"{delta}"
    )
    assert resident_out.ntt_resident
    converted = context.to_coeff_ct(resident_out)
    with per_row_mode():
        per_row_out = evaluator.multiply(ct1, ct2, keys.relin)
    assert np.array_equal(converted.c0.residues, per_row_out.c0.residues)
    assert np.array_equal(converted.c1.residues, per_row_out.c1.residues)
    got = context.decrypt(converted, keys.secret)
    want = context.decrypt(per_row_out, keys.secret)
    assert np.array_equal(got.coeffs, want.coeffs)

    best_resident = float("inf")
    best_per_row = float("inf")
    for _ in range(ROUNDS):
        gc.disable()
        try:
            best_resident = min(best_resident,
                                min_time(resident_mult, RESIDENT_REPS))
            with per_row_mode():
                best_per_row = min(best_per_row, min_time(
                    lambda: evaluator.multiply(ct1, ct2, keys.relin),
                    PER_ROW_REPS,
                ))
        finally:
            gc.enable()
        if best_per_row / best_resident >= TARGET * 1.02:
            break
    return {
        "n": n,
        "params": params.name,
        "k_q": params.k_q,
        "k_p": params.k_p,
        "log2_q": params.log2_q,
        "mult_resident_ms": round(best_resident * 1e3, 3),
        "mult_per_row_ms": round(best_per_row * 1e3, 3),
        "mult_resident_ops_per_s": round(1.0 / best_resident, 2),
        "mult_speedup": round(best_per_row / best_resident, 2),
        "roundtrip_rows": delta["roundtrip_rows"],
    }


def test_mult_resident():
    start = time.perf_counter()
    points = [resident_point(n) for n in SWEEP_NS]
    record = {
        "bench": "mult_resident",
        "mode": MODE,
        "meta": run_metadata(),
        "resident": points,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    json_name = "BENCH_fv_ops_fast.json" if FAST else "BENCH_fv_ops.json"
    append_trajectory_record(Path(RESULTS_DIR) / json_name, record)

    lines = [
        f"RESIDENT MULT — evaluation-domain base extension vs "
        f"per_row_mode ({MODE} mode, "
        f"measured in {time.perf_counter() - start:.0f}s)",
        f"{'n':>7}{'params':>14}{'log2 q':>8}{'resident':>11}"
        f"{'per-row':>11}{'speedup':>9}{'roundtrips':>12}",
    ]
    for p in points:
        lines.append(
            f"{p['n']:>7}{p['params']:>14}{p['log2_q']:>8}"
            f"{p['mult_resident_ms']:>9.1f}ms"
            f"{p['mult_per_row_ms']:>9.0f}ms"
            f"{p['mult_speedup']:>8.2f}x"
            f"{p['roundtrip_rows']:>12}"
        )
    lines.append(
        "(resident = NTT-resident operands in, resident product out, "
        "zero coefficient round trips; per-row = pre-batching hot path)"
    )
    save_result("mult_resident", "\n".join(lines))

    for p in points:
        floor = LARGE_RING_FLOOR if p["n"] >= 16384 else SMALL_RING_FLOOR
        assert p["mult_speedup"] >= floor, (
            f"n={p['n']}: resident Mult speedup {p['mult_speedup']:.2f}x "
            f"below the {floor}x floor"
        )
