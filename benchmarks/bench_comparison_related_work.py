"""Paper Sec. VI-E + abstract: comparisons with related work.

The headline claims regenerated here:

* >13x throughput over the FV-NFLlib software baseline on the i5;
* 400 Mult/s with two coprocessors — ahead of the Tesla V100's ~388 at
  matched parameters;
* faster than Poppelmann et al.'s Catapult YASHE implementation;
* a small fraction of the power of every baseline.
"""

from conftest import save_result

from repro.hw.config import HardwareConfig
from repro.hw.power import PowerModel
from repro.system.baseline import SoftwareBaseline
from repro.system.related_work import our_point, published_points
from repro.system.server import CloudServer
from repro.system.workloads import JobKind, mult_stream


def test_headline_throughput_and_speedup(benchmark, paper_params):
    config = HardwareConfig()
    server = CloudServer(paper_params, config)

    def measure():
        report = server.serve(mult_stream(200))
        return report.throughput_per_second()

    throughput = benchmark(measure)
    baseline = SoftwareBaseline(paper_params)
    speedup = baseline.mult_seconds() * throughput

    lines = [
        "HEADLINE — THROUGHPUT AND SPEEDUP",
        f"mults per second (2 coprocessors): {throughput:7.0f}   "
        "(paper: 400)",
        f"software baseline Mult:            "
        f"{baseline.mult_seconds() * 1e3:7.1f} ms (paper: 33 ms)",
        f"speedup over software:             {speedup:7.1f}x  (paper: >13x)",
    ]
    save_result("headline_speedup", "\n".join(lines))

    assert abs(throughput - 400) / 400 < 0.10
    assert speedup > 13.0


def test_related_work_table(benchmark, paper_params):
    config = HardwareConfig()
    server = CloudServer(paper_params, config)
    power = PowerModel(config)

    def build_table():
        ours = our_point(
            server.job_seconds(JobKind.MULT) * 1e3,
            config.num_coprocessors, power.peak_watts(),
        )
        return [ours] + published_points()

    points = benchmark(build_table)
    lines = [
        "SEC. VI-E — COMPARISON WITH RELATED WORK",
        f"{'implementation':<28}{'scheme':<18}{'n':>7}{'log q':>7}"
        f"{'Mult ms':>9}{'Mult/s':>8}{'W':>7}",
    ]
    for p in points:
        watts = f"{p.power_watts:.1f}" if p.power_watts else "-"
        lines.append(
            f"{p.name:<28}{p.scheme:<18}{p.n:>7}{p.log2_q:>7}"
            f"{p.mult_ms:>9.2f}{p.mults_per_second:>8.0f}{watts:>7}"
        )
    save_result("related_work", "\n".join(lines))

    ours = points[0]
    others = points[1:]
    # Who wins: we beat every published point on throughput.
    assert all(ours.mults_per_second > p.mults_per_second for p in others)
    # By roughly what factor: >13x vs NFLlib, ~par (slightly ahead) vs V100.
    nfllib = next(p for p in others if "NFLlib" in p.name)
    v100 = next(p for p in others if "V100" in p.name)
    assert ours.mults_per_second / nfllib.mults_per_second > 13
    assert 1.0 < ours.mults_per_second / v100.mults_per_second < 1.3
    # Power: far below every measured baseline.
    assert all(
        ours.power_watts < p.power_watts
        for p in others if p.power_watts is not None
    )


def test_poppelmann_comparison(benchmark, paper_params):
    """Paper: faster than Catapult-YASHE despite their lighter scheme."""
    config = HardwareConfig()
    server = CloudServer(paper_params, config)
    single_mult_ms = benchmark(
        lambda: server.job_seconds(JobKind.MULT) * 1e3
    )
    poppelmann = next(
        p for p in published_points() if "Poppelmann" in p.name
    )
    assert single_mult_ms < poppelmann.mult_ms
