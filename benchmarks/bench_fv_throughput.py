"""FV hot-path throughput: the batched NTT engine vs the pre-PR path.

Measures Mult/s, Rotate/s, keygen and encrypt latency, and end-to-end
``HEProgram`` latency at the paper's production parameters (n = 4096,
full six-prime q basis), for two code paths:

* **batched** — the production path: the gemm-based limb-parallel
  :class:`~repro.nttmath.batch.BasisTransformer`, vectorised lift/scale
  conversions, fused WordDecomp+NTT digits, and the NTT-resident
  ``LocalBackend`` executor;
* **per-row** — :func:`~repro.nttmath.batch.per_row_mode`, which
  restores the pre-batching hot path (one per-row transform per
  residue channel with its per-call bit-reversal rebuild, loop-based
  lift/scale, eager reductions, validating constructors).

Timing protocol: the machine is shared, so each quantity is measured
as the minimum over several repetitions (the minimum estimates the
deterministic cost; noise only ever adds time), in interleaved rounds,
and the headline speedups take the best round — the round least
disturbed by neighbours. Results are printed and written to
``benchmarks/results/fv_throughput.txt``; each run also **appends**
one record — the headline block plus a ring-degree sweep
(n = 4096 ... 32768, full vs ``per_row_mode``) and run metadata (git
sha, numpy version) — to the tracked perf trajectory in
``benchmarks/results/BENCH_fv_ops.json``.

``test_cores_vs_throughput`` appends a second record type to the same
trajectory: Mult/s under the thread and process executors at 1/2/4/8
workers (the cores-vs-throughput curve of the parallel-executor PR),
with each parallel cell bit-checked against the serial product first.

Set ``REPRO_BENCH_FAST=1`` (the CI bench-smoke job does) for a
shortened run: same parameters and protocol, fewer repetitions, a
sweep truncated at n = 8192, and conservative assertion floors —
single-digit samples on a busy CI runner cannot gate the headline
ratios reliably. Fast-mode records land in the separate
``BENCH_fv_ops_fast.json`` so a local ``make bench-smoke`` can never
pollute the committed full-mode trajectory. The committed full-mode
record shows >= 4.7x Mult/s and >= 5.7x Rotate/s at n = 4096 and
>= 3.6x Mult/s at n = 16384 and n = 32768 (the large-ring gemm
engine's acceptance bar is 3x).
"""

import gc
import json
import os
import subprocess
import time
from pathlib import Path

import numpy as np
from conftest import RESULTS_DIR, save_result

from repro.api import LocalBackend, Session
from repro.fv.encoder import Plaintext
from repro.fv.evaluator import Evaluator
from repro.fv.galois import GaloisEngine
from repro.fv.scheme import FvContext
from repro.nttmath.batch import batched_engine_ok, per_row_mode
from repro.obs import current_registry, diff_snapshots
from repro.parallel import available_cores, use_executor
from repro.params import hpca19, large_ring

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
MIN_ROUNDS = 2 if FAST else 3
MAX_ROUNDS = 3 if FAST else 10
BATCHED_REPS = 4 if FAST else 8
PER_ROW_REPS = 2 if FAST else 3
#: Headline targets (what an undisturbed machine measures, and what the
#: committed full-mode BENCH_fv_ops.json records): >= 5x Mult/s and
#: >= 3x Rotate/s. Measurement keeps sampling until it sees them.
MULT_TARGET = 5.0
ROTATE_TARGET = 3.0
#: Assertion floors — regression gates set below the headline so a
#: noisy shared runner cannot flake the suite; the recorded speedup in
#: the JSON is the headline number.
MULT_FLOOR = 3.5 if FAST else 4.5
ROTATE_FLOOR = 2.5 if FAST else 3.0
MODE = "fast" if FAST else "full"

#: Ring-degree sweep (satellite of the large-ring PR). Fast mode stops
#: at 8192 so the CI smoke job stays quick; the nightly full-mode run
#: covers the whole support matrix.
SWEEP_NS = (4096, 8192) if FAST else (4096, 8192, 16384, 32768)
#: Sweep gate: the large-ring acceptance bar is >= 3x Mult/s at
#: n >= 16384; the asserted floor sits below the recorded headline so
#: shared-runner noise cannot flake it.
SWEEP_FLOOR = 2.0 if FAST else 2.5
SWEEP_TARGET = 3.0
SWEEP_BATCHED_REPS = 2 if FAST else 3
SWEEP_PER_ROW_REPS = 1
SWEEP_ROUNDS = 1 if FAST else 2

#: Cores-vs-throughput sweep (satellite of the parallel-executor PR):
#: Mult/s at each worker count for the thread and process executors,
#: against the serial executor on the same ring. Fast mode trims the
#: matrix; the nightly full run records the whole trajectory.
CORES_NS = (8192,) if FAST else (8192, 32768)
CORES_WORKERS = (1, 2, 4) if FAST else (1, 2, 4, 8)
CORES_EXECUTORS = ("threads", "processes")
CORES_REPS = 2 if FAST else 3
#: The acceptance bar — ThreadPool@4 at >= 2x serial Mult/s on the
#: largest ring — is a statement about a machine with cores to spend;
#: it is asserted only where the affinity mask has at least this many.
CORES_FOR_SCALING_GATE = 4
CORES_SCALING_FLOOR = 2.0


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).parent, capture_output=True, text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def run_metadata() -> dict:
    """Provenance attached to every trajectory record."""
    return {
        "git_sha": _git_sha(),
        "numpy_version": np.__version__,
        "mode": MODE,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def append_trajectory_record(json_path: Path, record: dict) -> None:
    """Append one record to the BENCH_fv_ops.json trajectory.

    The file is a JSON list, newest record last; a pre-trajectory
    single-object file (the PR 4 format) is adopted as the first
    point.
    """
    records: list = []
    if json_path.exists():
        existing = json.loads(json_path.read_text())
        records = existing if isinstance(existing, list) else [existing]
    records.append(record)
    json_path.write_text(json.dumps(records, indent=2) + "\n")


def min_time(fn, reps):
    """Minimum wall time of ``fn`` over ``reps`` runs (after a warmup)."""
    fn()
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def ratio_rounds(batched_fn, per_row_fn, target):
    """Interleaved measurement rounds with the min/min estimator.

    Both quantities are deterministic costs; on a shared machine noise
    only ever adds time, so the minimum over all samples estimates each
    true cost and their quotient the true speedup. Rounds interleave
    the two paths to spread both across the same load phases, and
    measurement stops early once the estimate clears ``target`` with a
    small margin (extra rounds only refine it upward).
    """
    best_batched = float("inf")
    best_per_row = float("inf")
    ratios = []
    for round_index in range(MAX_ROUNDS):
        gc.disable()
        try:
            best_batched = min(best_batched,
                               min_time(batched_fn, BATCHED_REPS))
            with per_row_mode():
                best_per_row = min(best_per_row,
                                   min_time(per_row_fn, PER_ROW_REPS))
        finally:
            gc.enable()
        ratios.append(best_per_row / best_batched)
        if round_index + 1 >= MIN_ROUNDS and ratios[-1] >= target * 1.02:
            break
    return ratios[-1], best_batched * 1e3, best_per_row * 1e3, ratios


def sweep_point(n: int) -> dict:
    """Full-vs-per-row Mult/s at one ring degree of the support matrix.

    Uses the same min/min interleaved protocol as the headline block,
    with fewer repetitions (the per-row baseline costs seconds per
    Mult at n = 32768). Results are bit-checked against the per-row
    path before any timing.
    """
    params = large_ring(n)
    assert batched_engine_ok(params.q_primes + params.p_primes, n), (
        f"gemm engine must serve the full tensor basis at n={n}"
    )
    context = FvContext(params, seed=2019)
    keys = context.keygen()
    evaluator = Evaluator(context)
    m1 = Plaintext.from_list([1, 1, 0, 1], params.n, params.t)
    m2 = Plaintext.from_list([1, 0, 1], params.n, params.t)
    ct1 = context.encrypt(m1, keys.public)
    ct2 = context.encrypt(m2, keys.public)
    batched_out = evaluator.multiply(ct1, ct2, keys.relin)
    with per_row_mode():
        per_row_out = evaluator.multiply(ct1, ct2, keys.relin)
    assert np.array_equal(batched_out.c0.residues,
                          per_row_out.c0.residues)
    assert np.array_equal(batched_out.c1.residues,
                          per_row_out.c1.residues)
    best_batched = float("inf")
    best_per_row = float("inf")
    for _ in range(SWEEP_ROUNDS):
        gc.disable()
        try:
            best_batched = min(best_batched, min_time(
                lambda: evaluator.multiply(ct1, ct2, keys.relin),
                SWEEP_BATCHED_REPS,
            ))
            with per_row_mode():
                best_per_row = min(best_per_row, min_time(
                    lambda: evaluator.multiply(ct1, ct2, keys.relin),
                    SWEEP_PER_ROW_REPS,
                ))
        finally:
            gc.enable()
        if best_per_row / best_batched >= SWEEP_TARGET * 1.02:
            break
    return {
        "n": n,
        "params": params.name,
        "k_q": params.k_q,
        "k_p": params.k_p,
        "log2_q": params.log2_q,
        "mult_batched_ms": round(best_batched * 1e3, 3),
        "mult_per_row_ms": round(best_per_row * 1e3, 3),
        "mult_batched_ops_per_s": round(1.0 / best_batched, 2),
        "mult_per_row_ops_per_s": round(1.0 / best_per_row, 2),
        "mult_speedup": round(best_per_row / best_batched, 2),
    }


def test_fv_throughput():
    params = hpca19()
    metrics_before = current_registry().snapshot()
    context = FvContext(params, seed=2019)

    # Keygen: one timed run per path (it is seconds on the per-row path).
    keygen_batched = min_time(lambda: FvContext(params, seed=7).keygen(),
                              2 if not FAST else 1)
    with per_row_mode():
        start = time.perf_counter()
        FvContext(params, seed=7).keygen()
        keygen_per_row = time.perf_counter() - start

    keys = context.keygen()
    evaluator = Evaluator(context)
    engine = GaloisEngine(context)
    m1 = Plaintext.from_list([1, 1, 0, 1], params.n, params.t)
    m2 = Plaintext.from_list([1, 0, 1], params.n, params.t)
    ct1 = context.encrypt(m1, keys.public)
    ct2 = context.encrypt(m2, keys.public)

    encrypt_ms = min_time(
        lambda: context.encrypt(m1, keys.public), BATCHED_REPS
    ) * 1e3

    # Homomorphic multiplication (tensor + scale + relinearise).
    batched_out = evaluator.multiply(ct1, ct2, keys.relin)
    with per_row_mode():
        per_row_out = evaluator.multiply(ct1, ct2, keys.relin)
    assert np.array_equal(batched_out.c0.residues, per_row_out.c0.residues)
    assert np.array_equal(batched_out.c1.residues, per_row_out.c1.residues)
    mult_speedup, mult_ms, mult_row_ms, mult_ratios = ratio_rounds(
        lambda: evaluator.multiply(ct1, ct2, keys.relin),
        lambda: evaluator.multiply(ct1, ct2, keys.relin),
        MULT_TARGET,
    )

    # Slot rotation (NTT-resident vs the pre-PR coefficient-domain path).
    rot_keys = engine.rotation_keygen(keys.secret, [1])
    resident_in = context.to_ntt_ct(ct1)
    eager_rot = engine.apply(ct1, rot_keys[1])
    resident_rot = context.to_coeff_ct(
        engine.apply_resident(resident_in, rot_keys[1])
    )
    assert np.array_equal(eager_rot.c0.residues, resident_rot.c0.residues)
    assert np.array_equal(eager_rot.c1.residues, resident_rot.c1.residues)
    rotate_speedup, rotate_ms, rotate_row_ms, rotate_ratios = ratio_rounds(
        lambda: engine.apply_resident(resident_in, rot_keys[1]),
        lambda: engine.apply(ct1, rot_keys[1]),
        ROTATE_TARGET,
    )

    # End-to-end HEProgram latency: NTT-resident vs eager executor on a
    # rotate-and-accumulate graph (fresh sessions so node caches do not
    # share work), plus the transform telemetry that proves residency.
    def program_latency(resident: bool):
        session = Session(params, seed=11)
        a = session.encrypt([3, 1, 4, 1, 5])
        b = session.encrypt([2, 7, 1, 8, 2])
        expr = (a * b + a).rotate(4) * 3 + b
        program = session.compile(expr, name="bench-graph")
        backend = LocalBackend(session, ntt_resident=resident)
        start = time.perf_counter()
        backend.run(program)
        elapsed = time.perf_counter() - start
        counts = backend.last_transform_counts
        return elapsed * 1e3, counts["forward_rows"] + counts["inverse_rows"]

    program_resident_ms, resident_rows = program_latency(True)
    program_eager_ms, eager_rows = program_latency(False)
    assert resident_rows < eager_rows, (
        "NTT-resident execution must eliminate transforms "
        f"({resident_rows} vs {eager_rows})"
    )

    # Ring-degree sweep: the large-ring gemm engine against the
    # per-row baseline at every supported n.
    sweep = [sweep_point(n) for n in SWEEP_NS]

    results = {
        "bench": "fv_throughput",
        "mode": MODE,
        "meta": run_metadata(),
        "params": {
            "name": params.name,
            "n": params.n,
            "k_q": params.k_q,
            "k_p": params.k_p,
            "log2_q": params.log2_q,
        },
        "mult": {
            "batched_ms": round(mult_ms, 3),
            "per_row_ms": round(mult_row_ms, 3),
            "batched_ops_per_s": round(1e3 / mult_ms, 2),
            "per_row_ops_per_s": round(1e3 / mult_row_ms, 2),
            "speedup": round(mult_speedup, 2),
            "round_speedups": [round(r, 2) for r in mult_ratios],
        },
        "rotate": {
            "batched_ms": round(rotate_ms, 3),
            "per_row_ms": round(rotate_row_ms, 3),
            "batched_ops_per_s": round(1e3 / rotate_ms, 2),
            "per_row_ops_per_s": round(1e3 / rotate_row_ms, 2),
            "speedup": round(rotate_speedup, 2),
            "round_speedups": [round(r, 2) for r in rotate_ratios],
        },
        "keygen": {
            "batched_ms": round(keygen_batched * 1e3, 2),
            "per_row_ms": round(keygen_per_row * 1e3, 2),
            "speedup": round(keygen_per_row / keygen_batched, 2),
        },
        "encrypt": {"batched_ms": round(encrypt_ms, 3)},
        "program": {
            "resident_ms": round(program_resident_ms, 2),
            "eager_ms": round(program_eager_ms, 2),
            "resident_row_transforms": resident_rows,
            "eager_row_transforms": eager_rows,
            "transforms_eliminated": eager_rows - resident_rows,
        },
        "sweep": sweep,
        # What the run cost in registry terms: every counter delta
        # (engine transforms, fallbacks, resident-cache events) the
        # measurement produced, straight from the repro.obs registry.
        "metrics": {
            series: delta for series, delta in sorted(diff_snapshots(
                metrics_before, current_registry().snapshot()).items())
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    json_name = "BENCH_fv_ops_fast.json" if FAST else "BENCH_fv_ops.json"
    append_trajectory_record(Path(RESULTS_DIR) / json_name, results)

    lines = [
        f"FV HOT-PATH THROUGHPUT — batched engine vs pre-PR per-row path "
        f"({MODE} mode, {params.name}: n={params.n}, "
        f"{params.k_q}+{params.k_p} primes)",
        f"{'operation':<22}{'batched':>12}{'per-row':>12}{'speedup':>9}",
        f"{'Mult (ms)':<22}{mult_ms:>12.2f}{mult_row_ms:>12.2f}"
        f"{mult_speedup:>8.2f}x",
        f"{'Mult/s':<22}{1e3 / mult_ms:>12.1f}{1e3 / mult_row_ms:>12.1f}",
        f"{'Rotate (ms)':<22}{rotate_ms:>12.2f}{rotate_row_ms:>12.2f}"
        f"{rotate_speedup:>8.2f}x",
        f"{'Rotate/s':<22}{1e3 / rotate_ms:>12.1f}"
        f"{1e3 / rotate_row_ms:>12.1f}",
        f"{'Keygen (ms)':<22}{keygen_batched * 1e3:>12.1f}"
        f"{keygen_per_row * 1e3:>12.1f}"
        f"{keygen_per_row / keygen_batched:>8.2f}x",
        f"{'Encrypt (ms)':<22}{encrypt_ms:>12.2f}",
        f"{'HEProgram (ms)':<22}{program_resident_ms:>12.1f}"
        f"{program_eager_ms:>12.1f}   (resident vs eager executor)",
        f"row transforms per program run: resident {resident_rows}, "
        f"eager {eager_rows} ({eager_rows - resident_rows} eliminated)",
        "",
        "RING-DEGREE SWEEP — full gemm engine vs per_row_mode, Mult/s",
        f"{'n':>7}{'params':>14}{'log2 q':>8}{'batched':>11}"
        f"{'per-row':>11}{'speedup':>9}",
    ]
    for point in sweep:
        lines.append(
            f"{point['n']:>7}{point['params']:>14}{point['log2_q']:>8}"
            f"{point['mult_batched_ms']:>9.1f}ms"
            f"{point['mult_per_row_ms']:>9.0f}ms"
            f"{point['mult_speedup']:>8.2f}x"
        )
    lines.append(
        "(per-row = pre-PR hot path via per_row_mode; min/min estimator "
        "over interleaved rounds)"
    )
    save_result("fv_throughput", "\n".join(lines))

    assert mult_speedup >= MULT_FLOOR, (
        f"Mult/s speedup {mult_speedup:.2f}x below the {MULT_FLOOR}x floor"
    )
    assert rotate_speedup >= ROTATE_FLOOR, (
        f"Rotate/s speedup {rotate_speedup:.2f}x below the "
        f"{ROTATE_FLOOR}x floor"
    )
    for point in sweep:
        assert point["mult_speedup"] >= SWEEP_FLOOR, (
            f"n={point['n']}: sweep Mult/s speedup "
            f"{point['mult_speedup']:.2f}x below the {SWEEP_FLOOR}x floor"
        )


def _cores_points(n: int) -> list[dict]:
    """Mult/s for every (executor, workers) cell at one ring degree.

    The serial baseline and every parallel cell multiply the same
    ciphertexts with the same keys; each parallel cell is bit-checked
    against the serial product before it is timed, so a scheduling bug
    can never hide inside a throughput number.
    """
    params = large_ring(n)
    context = FvContext(params, seed=2019)
    keys = context.keygen()
    evaluator = Evaluator(context)
    m1 = Plaintext.from_list([1, 1, 0, 1], params.n, params.t)
    m2 = Plaintext.from_list([1, 0, 1], params.n, params.t)
    ct1 = context.encrypt(m1, keys.public)
    ct2 = context.encrypt(m2, keys.public)

    def mult():
        return evaluator.multiply(ct1, ct2, keys.relin)

    with use_executor("serial"):
        reference = mult()
        gc.disable()
        try:
            serial_s = min_time(mult, CORES_REPS)
        finally:
            gc.enable()
    points = [{
        "n": n, "executor": "serial", "workers": 1,
        "mult_ms": round(serial_s * 1e3, 3),
        "mult_ops_per_s": round(1.0 / serial_s, 2),
        "speedup_vs_serial": 1.0,
    }]
    registry = current_registry()
    for mode in CORES_EXECUTORS:
        for workers in CORES_WORKERS:
            if workers < 2:
                continue  # one worker is the serial baseline
            with use_executor(mode, workers) as executor:
                if executor.name != mode:
                    # Construction fell back (recorded by the executor
                    # layer); an absent cell beats a mislabelled one.
                    continue
                got = mult()
                assert np.array_equal(reference.c0.residues,
                                      got.c0.residues)
                assert np.array_equal(reference.c1.residues,
                                      got.c1.residues)
                gc.disable()
                try:
                    best = min_time(mult, CORES_REPS)
                finally:
                    gc.enable()
                points.append({
                    "n": n, "executor": mode, "workers": workers,
                    "mult_ms": round(best * 1e3, 3),
                    "mult_ops_per_s": round(1.0 / best, 2),
                    "speedup_vs_serial": round(serial_s / best, 2),
                    "worker_utilisation": round(registry.value(
                        "parallel_worker_utilisation", executor=mode), 3),
                })
    return points


def test_cores_vs_throughput():
    """Workers-vs-Mult/s trajectory for the parallel executors.

    Appends a ``cores`` record to the same BENCH_fv_ops.json chain the
    headline bench feeds, and renders a table alongside it. The 2x
    scaling gate for ThreadPool@4 on the largest ring only arms on
    machines whose affinity mask has >= 4 cores — a single-core runner
    still measures and records the (honest, flat) trajectory, it just
    cannot manufacture parallel speedup to assert on.
    """
    cores = available_cores()
    points = [p for n in CORES_NS for p in _cores_points(n)]
    record = {
        "bench": "fv_cores",
        "mode": MODE,
        "meta": run_metadata(),
        "available_cores": cores,
        "cores": points,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    json_name = "BENCH_fv_ops_fast.json" if FAST else "BENCH_fv_ops.json"
    append_trajectory_record(Path(RESULTS_DIR) / json_name, record)

    lines = [
        f"CORES VS THROUGHPUT — Mult/s by executor and worker count "
        f"({MODE} mode, {cores} core(s) available)",
        f"{'n':>7}{'executor':>12}{'workers':>9}{'Mult (ms)':>11}"
        f"{'Mult/s':>9}{'vs serial':>11}",
    ]
    for p in points:
        lines.append(
            f"{p['n']:>7}{p['executor']:>12}{p['workers']:>9}"
            f"{p['mult_ms']:>11.1f}{p['mult_ops_per_s']:>9.2f}"
            f"{p['speedup_vs_serial']:>10.2f}x"
        )
    save_result("fv_cores", "\n".join(lines))

    if cores >= CORES_FOR_SCALING_GATE:
        n_max = max(CORES_NS)
        (gate,) = [p for p in points
                   if p["n"] == n_max and p["executor"] == "threads"
                   and p["workers"] == 4]
        assert gate["speedup_vs_serial"] >= CORES_SCALING_FLOOR, (
            f"ThreadPool@4 Mult/s at n={n_max} is "
            f"{gate['speedup_vs_serial']:.2f}x serial, below the "
            f"{CORES_SCALING_FLOOR}x scaling floor"
        )
