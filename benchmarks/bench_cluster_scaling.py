"""Cluster benches: throughput-vs-shards and tail-latency-vs-imbalance.

Extends the paper's Table V scaling argument from one board to a
routed multi-FPGA cluster: (1) saturated Mult/s against shard count
under tenant-affinity routing — the headline is near-linear scaling to
8 boards; (2) p99 against the utilization-imbalance each routing
policy produces on a Zipf-skewed open-loop trace — the cost of keeping
tenants sticky to a board versus spreading their DMA trains.

Set ``REPRO_BENCH_FAST=1`` (the CI bench-smoke job does) to shrink the
sweeps; the result files record which mode produced them.
"""

import os

from conftest import save_result

from repro.cluster import FpgaCluster, TenantAffinityRouter, \
    default_routers
from repro.system.workloads import cluster_trace, saturated_tenant_jobs

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
SHARD_COUNTS = (1, 2, 4) if FAST else (1, 2, 4, 8)
TENANTS_PER_SHARD = 128 if FAST else 256
TRACE_TENANTS = 96 if FAST else 192
TRACE_SECONDS = 0.5 if FAST else 1.0
MODE = "fast" if FAST else "full"


def test_throughput_vs_shards(benchmark, paper_params):
    """Near-linear saturated Mult/s to 8 boards under affinity routing."""
    max_shards = SHARD_COUNTS[-1]

    def sweep():
        points = {}
        for num_shards in SHARD_COUNTS:
            jobs = saturated_tenant_jobs(
                TENANTS_PER_SHARD * max_shards, 1)
            cluster = FpgaCluster.homogeneous(
                paper_params, num_shards, router=TenantAffinityRouter())
            report = cluster.run(jobs)
            points[num_shards] = (report.throughput_per_second(),
                                  report.imbalance())
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base, _ = points[1]
    lines = [
        "EXTENSION — CLUSTER SCALING: SATURATED Mult/s vs SHARDS "
        f"({MODE} mode)",
        f"tenant-affinity (rendezvous) routing, "
        f"{TENANTS_PER_SHARD * max_shards} tenants, one board = "
        f"{base:.0f} Mult/s",
        f"{'shards':>7}{'Mult/s':>10}{'scaling':>9}{'imbalance':>11}",
    ]
    for num_shards in SHARD_COUNTS:
        tput, imbalance = points[num_shards]
        lines.append(f"{num_shards:>7}{tput:>10.0f}"
                     f"{tput / base:>8.2f}x{imbalance:>11.3f}")
    lines.append("(scaling loss is exactly the hash imbalance: the "
                 "slowest board sets the makespan)")
    save_result("cluster_scaling_throughput", "\n".join(lines))

    # Acceptance: near-linear — >= 0.875x ideal at the top of the sweep
    # (7x at 8 shards), and monotone throughput growth throughout.
    top = SHARD_COUNTS[-1]
    assert points[top][0] >= 0.875 * top * base
    ordered = [points[n][0] for n in SHARD_COUNTS]
    assert ordered == sorted(ordered)


def test_tail_latency_vs_imbalance(benchmark, paper_params):
    """p99 against routing imbalance on a Zipf-skewed open trace.

    Pure tenant affinity maximises batchable same-tenant trains but
    lets the hottest tenant swamp one board; bounded-load affinity
    spills just enough to rejoin the balanced policies' tail — the
    '<10% p99 degradation' face of the scaling headline, measured
    against a single board at the same per-board load.
    """
    num_shards = 2 if FAST else 4
    single = FpgaCluster.homogeneous(paper_params, 1)
    capacity = single.capacity_mults_per_second()
    rho = 0.8

    single_report = single.run(
        cluster_trace(TRACE_TENANTS, rho * capacity, TRACE_SECONDS,
                      skew=1.1, seed=5))
    single_p99 = single_report.latency_summary().p99

    trace = cluster_trace(TRACE_TENANTS, rho * capacity * num_shards,
                          TRACE_SECONDS, skew=1.1, seed=5)

    def sweep():
        rows = {}
        for router in default_routers(seed=7):
            cluster = FpgaCluster.homogeneous(paper_params, num_shards,
                                              router=router)
            report = cluster.run(trace)
            rows[router.name] = (report.latency_summary().p99,
                                 report.imbalance(),
                                 report.reroutes)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "EXTENSION — CLUSTER TAIL LATENCY vs ROUTING IMBALANCE "
        f"({MODE} mode)",
        f"{num_shards} shards, Zipf(1.1) x{TRACE_TENANTS} tenants at "
        f"rho={rho}, {len(trace)} jobs; one board at the same "
        f"per-board load: p99 = {single_p99 * 1e3:.2f} ms",
        f"{'router':<12}{'p99 ms':>9}{'vs 1 board':>12}{'imbalance':>11}",
    ]
    for name, (p99, imbalance, _) in rows.items():
        lines.append(f"{name:<12}{p99 * 1e3:>9.2f}"
                     f"{(p99 / single_p99 - 1) * 100:>+11.1f}%"
                     f"{imbalance:>11.3f}")
    lines.append("(pure affinity pays the hot-tenant tail; bounded-load "
                 "affinity keeps consistent placement within the "
                 "balanced policies' tail)")
    save_result("cluster_tail_latency_imbalance", "\n".join(lines))

    # Scaling out must not degrade the tail: bounded-load affinity
    # keeps p99 within 10% of the single-board baseline (it typically
    # *improves* it — spilled jobs can use any board).
    assert rows["affinity-bl"][0] <= 1.10 * single_p99
    # And the imbalance/tail tradeoff orders as the model predicts.
    assert rows["affinity"][1] > rows["affinity-bl"][1] >= \
        rows["rr"][1] - 1e-9
    assert rows["affinity"][0] > rows["affinity-bl"][0]
