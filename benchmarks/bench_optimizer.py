"""Optimiser benches: keyswitch reduction and simulated makespan.

The acceptance numbers for the :mod:`repro.optim` pass stack, on its
two motivating programs:

* a sum-all-slots-heavy reduction (many parallel dot products), where
  rotation folding collapses the per-term ladders;
* the FAME-style encrypted matmul app, where folding and lazy
  relinearisation combine.

For each program the bench lowers the graph raw and optimised against
the same cost model, asserts the optimiser removes at least 30% of
the lowered keyswitch ops *and* that the optimised program decrypts
to the same values on the functional backend, then replays both
versions through the simulated serving runtime and records the
makespan improvement as an ``optim`` record in the
BENCH_fv_ops.json trajectory.
"""

from __future__ import annotations

import os
from pathlib import Path

from bench_fv_throughput import append_trajectory_record, run_metadata
from conftest import save_result

from repro.api import LocalBackend, Session, SimulatedBackend
from repro.apps.matmul import EncryptedMatmul
from repro.params import mini

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
MODE = "fast" if FAST else "full"
REQUESTS = 20 if FAST else 100
#: The acceptance bar: the pass stack must eliminate at least this
#: fraction of the lowered keyswitch ops on both programs.
KEYSWITCH_REDUCTION_FLOOR = 0.30

MATMUL_A = [[1, 2, 3, 4, 5, 6, 7, 8], [2, 0, 1, 3, 5, 2, 4, 1]]
MATMUL_B = [[1, 2], [0, 1], [3, 1], [1, 0],
            [2, 2], [1, 1], [0, 3], [2, 1]]


def sum_heavy_case():
    """Four parallel dot products, reduced with per-term ladders."""
    session = Session(mini(t=65537), seed=3)
    vectors = [session.encrypt([i + 1, i + 2, i + 3, i + 4])
               for i in range(4)]
    weights = [session.encrypt([2, 1, 2, 1]) for _ in range(4)]
    total = None
    for vec, wt in zip(vectors, weights):
        term = (vec * wt).sum_slots()
        total = term if total is None else total + term
    program = session.compile(total, name="sum-heavy")
    expected = [int(session.decrypt(total)[0])]

    def decrypt(result):
        return [int(session.decrypt(result.handle("out"))[0])]

    return session, program, expected, decrypt


def matmul_case():
    """The encrypted blocked matmul app (2x8 @ 8x2, 4-slot blocks)."""
    session = Session(mini(t=65537), seed=29)
    matmul = EncryptedMatmul(session, block_slots=4)
    program = matmul.matmul_program(matmul.encrypt_rows(MATMUL_A),
                                    matmul.encrypt_cols(MATMUL_B))
    reference = EncryptedMatmul.reference(MATMUL_A, MATMUL_B,
                                          session.params.t)
    expected = [v for row in reference for v in row]

    def decrypt(result):
        return [
            matmul.decrypt_entry(result.handle(f"c{i}_{j}"))
            for i in range(len(reference))
            for j in range(len(reference[0]))
        ]

    return session, program, expected, decrypt


def measure(session, program, expected, decrypt):
    """Raw-vs-optimised lowering and serving numbers for one program."""
    raw_backend = SimulatedBackend.over_runtime(session.params)
    opt_backend = SimulatedBackend.over_runtime(session.params,
                                                optimize=True)
    raw = raw_backend.lower(program)
    opt = opt_backend.lower(program)
    reduction = 1 - opt.keyswitch_ops() / raw.keyswitch_ops()
    assert reduction >= KEYSWITCH_REDUCTION_FLOOR, (
        f"{program.name}: keyswitch reduction {reduction:.1%} below "
        f"the {KEYSWITCH_REDUCTION_FLOOR:.0%} floor"
    )

    # Semantic equivalence on the functional backend.
    got = decrypt(LocalBackend(session).run(opt.program))
    assert got == expected, f"{program.name}: {got} != {expected}"

    raw_run = raw_backend.run(program, requests=REQUESTS, seed=5)
    opt_run = opt_backend.run(program, requests=REQUESTS, seed=5)
    raw_span = max(f.finish_seconds for f in raw_run.completed)
    opt_span = max(f.finish_seconds for f in opt_run.completed)
    assert opt_span < raw_span, (
        f"{program.name}: optimised makespan did not improve"
    )
    return {
        "program": program.name,
        "ops_before": len(raw.ops),
        "ops_after": len(opt.ops),
        "keyswitches_before": raw.keyswitch_ops(),
        "keyswitches_after": opt.keyswitch_ops(),
        "keyswitch_reduction": round(reduction, 4),
        "train_before_ms": round(raw.train_seconds() * 1e3, 3),
        "train_after_ms": round(opt.train_seconds() * 1e3, 3),
        "critical_path_ms": round(opt.critical_path_seconds() * 1e3, 3),
        "makespan_before_ms": round(raw_span * 1e3, 3),
        "makespan_after_ms": round(opt_span * 1e3, 3),
        "makespan_speedup": round(raw_span / opt_span, 3),
    }


def test_optimizer_keyswitch_and_makespan():
    rows = [measure(*sum_heavy_case()), measure(*matmul_case())]

    lines = [
        f"Optimiser pass stack — keyswitches and simulated makespan "
        f"({MODE} mode, {REQUESTS} requests)",
        f"{'program':<18}{'keyswitches':>13}{'saved':>8}"
        f"{'train ms':>18}{'makespan ms':>13}{'speedup':>9}",
    ]
    for row in rows:
        keyswitches = (f"{row['keyswitches_before']} -> "
                       f"{row['keyswitches_after']}")
        train = (f"{row['train_before_ms']:.2f} -> "
                 f"{row['train_after_ms']:.2f}")
        lines.append(
            f"{row['program']:<18}{keyswitches:>13}"
            f"{row['keyswitch_reduction']:>8.0%}{train:>18}"
            f"{row['makespan_after_ms']:>13.2f}"
            f"{row['makespan_speedup']:>8.2f}x"
        )
    save_result("BENCH_optimizer", "\n".join(lines))

    json_name = "BENCH_fv_ops_fast.json" if FAST else "BENCH_fv_ops.json"
    append_trajectory_record(
        Path(__file__).parent / "results" / json_name,
        {"optim": rows, "mode": MODE, "meta": run_metadata()},
    )
