"""Chaos bench: kill a board mid-run and measure what the tail pays.

The fault-tolerance headline for the cluster extension: an 8-board
fleet at ~60% of saturated capacity, tenant keys replicated to R=2
boards, takes a board kill at 40% of the run (recovering at 80%) and
must come out the other side with

* **zero accepted-job loss** — every offered job appears in exactly
  one result or reasoned rejection, and the retry path re-lands every
  spilled job (``FailureReport.jobs_lost == 0``);
* **availability >= 99%** over the whole window; and
* **p99 latency inflated by less than 3x** against a fault-free twin
  of the same trace on the same fleet.

Set ``REPRO_BENCH_FAST=1`` (the CI fault-smoke job does) for a short
trace; the result files record which mode produced them. Appends a
``fault`` record to the BENCH_fv_ops.json trajectory rendered by
``render_trajectory.py``.
"""

import os
from pathlib import Path

from bench_fv_throughput import append_trajectory_record, run_metadata
from conftest import save_result

from repro.cluster import FpgaCluster, ReplicatedPlacement, \
    TenantAffinityRouter
from repro.faults import FaultPlan, RetryPolicy
from repro.system.workloads import cluster_trace, zipf_tenant_rates

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
MODE = "fast" if FAST else "full"
SHARDS = 8
REPLICAS = 2
DURATION_SECONDS = 0.25 if FAST else 1.0
LOAD_FRACTION = 0.6
TENANTS = 64 if FAST else 128
SEED = 2019


def _cluster(paper_params, plan):
    return FpgaCluster.homogeneous(
        paper_params, SHARDS, router=TenantAffinityRouter(),
        fault_plan=plan, retry=RetryPolicy(seed=SEED), replicas=REPLICAS)


def _check_conservation(report, jobs):
    offered = {job.index for job in jobs}
    landed = sorted([r.job.index for shard in report.shard_reports
                     for r in shard.results]
                    + [r.job.index for shard in report.shard_reports
                       for r in shard.rejected]
                    + [r.job.index for r in report.rejected])
    assert landed == sorted(offered), "a job was lost or duplicated"


def test_board_kill_chaos(benchmark, paper_params):
    """Mid-run board kill: zero loss, >=99% availability, <3x p99."""
    rate = LOAD_FRACTION * FpgaCluster.homogeneous(
        paper_params, SHARDS).capacity_mults_per_second()
    jobs = cluster_trace(TENANTS, rate, DURATION_SECONDS, skew=1.1,
                         seed=SEED)
    # Kill the board the Zipf head pins to — the worst-case victim:
    # its queue is the deepest in the fleet when the crash lands.
    rates = zipf_tenant_rates(TENANTS, rate, 1.1)
    placement = ReplicatedPlacement(
        [f"shard{i}" for i in range(SHARDS)], REPLICAS)
    victim = placement.primary(max(rates, key=rates.get))
    plan = FaultPlan.board_kill(
        victim, 0.4 * DURATION_SECONDS,
        recover_at=0.8 * DURATION_SECONDS)

    def run():
        clean = _cluster(paper_params, None).run(jobs)
        chaos = _cluster(paper_params, plan).run(jobs)
        return clean, chaos

    clean, chaos = benchmark.pedantic(run, rounds=1, iterations=1)
    _check_conservation(chaos, jobs)
    failure = chaos.failure
    p99_clean = clean.latency_summary().p99
    p99_chaos = chaos.latency_summary().p99
    inflation = p99_chaos / p99_clean if p99_clean else float("inf")

    lines = [
        f"EXTENSION — FAULT TOLERANCE: MID-RUN BOARD KILL ({MODE} mode)",
        f"{SHARDS} boards, R={REPLICAS} replication, "
        f"{LOAD_FRACTION:.0%} of capacity ({rate:.0f} jobs/s, "
        f"{len(jobs)} jobs over {DURATION_SECONDS:.2f}s), kill board "
        f"{victim} (the Zipf head's primary) at 40%, recover at 80%",
        "",
        f"{'':>24}{'fault-free':>12}{'board kill':>12}",
        f"{'completed':>24}{clean.completed:>12}{chaos.completed:>12}",
        f"{'availability':>24}{clean.availability:>12.4f}"
        f"{chaos.availability:>12.4f}",
        f"{'p99 latency (ms)':>24}{1e3 * p99_clean:>12.3f}"
        f"{1e3 * p99_chaos:>12.3f}",
        f"(p99 inflation {inflation:.2f}x; spilled "
        f"{failure.jobs_spilled}, retried {failure.jobs_retried}, "
        f"relocated {failure.jobs_relocated}, failovers "
        f"{failure.failovers}, rehydrations {failure.rehydrations}, "
        f"lost {failure.jobs_lost})",
        "",
        failure.render(),
    ]
    save_result("BENCH_fault_tolerance", "\n".join(lines))

    json_name = "BENCH_fv_ops_fast.json" if FAST else "BENCH_fv_ops.json"
    append_trajectory_record(
        Path(__file__).parent / "results" / json_name,
        {
            "fault": {
                "shards": SHARDS,
                "replicas": REPLICAS,
                "jobs": len(jobs),
                "jobs_lost": failure.jobs_lost,
                "jobs_spilled": failure.jobs_spilled,
                "jobs_retried": failure.jobs_retried,
                "failovers": failure.failovers,
                "rehydrations": failure.rehydrations,
                "availability": chaos.availability,
                "p99_clean_ms": 1e3 * p99_clean,
                "p99_chaos_ms": 1e3 * p99_chaos,
                "p99_inflation": inflation,
            },
            "mode": MODE,
            "meta": run_metadata(),
        },
    )

    # Acceptance gates: no accepted job may vanish, the fleet stays
    # >=99% available through the outage, and the tail pays under 3x.
    assert failure.jobs_lost == 0
    assert failure.crashes == 1 and failure.recoveries == 1
    assert chaos.availability >= 0.99
    assert inflation < 3.0
