"""Paper Table I: performance of high-level operations (one coprocessor).

Regenerates every row: Mult in HW, Add in HW, Add in SW, and the two
ciphertext transfer costs, in the paper's own units (Arm cycles at
1.2 GHz and milliseconds).
"""

import pytest

from conftest import format_row, save_result

from repro.hw.dma import DmaModel
from repro.system.arm import ArmCoreModel

PAPER = {
    "mult_hw_cycles": 5_349_567,
    "mult_hw_ms": 4.458,
    "add_hw_cycles": 31_339,
    "add_sw_cycles": 54_680_467,
    "send_cycles": 434_013,
    "recv_cycles": 215_697,
}


@pytest.fixture(scope="module")
def mult_report(paper_coprocessor, paper_ciphertexts, paper_keys):
    ct1, ct2 = paper_ciphertexts
    _, report = paper_coprocessor.mult(ct1, ct2, paper_keys.relin)
    return report


def test_table1_mult_in_hw(benchmark, paper_coprocessor, paper_ciphertexts,
                           paper_keys, mult_report):
    ct1, ct2 = paper_ciphertexts

    def run_mult():
        return paper_coprocessor.mult(ct1, ct2, paper_keys.relin)[1]

    report = benchmark.pedantic(run_mult, rounds=1, iterations=1)
    assert abs(report.arm_cycles - PAPER["mult_hw_cycles"]) \
        / PAPER["mult_hw_cycles"] < 0.10


def test_table1_add_in_hw(benchmark, paper_coprocessor, paper_ciphertexts):
    ct1, ct2 = paper_ciphertexts

    def run_add():
        return paper_coprocessor.add(ct1, ct2)[1]

    report = benchmark.pedantic(run_add, rounds=1, iterations=1)
    assert abs(report.arm_cycles - PAPER["add_hw_cycles"]) \
        / PAPER["add_hw_cycles"] < 0.10


def test_table1_full_table(benchmark, paper_coprocessor, paper_ciphertexts,
                           paper_keys, paper_params, mult_report):
    """Assemble and verify the complete Table I."""
    ct1, ct2 = paper_ciphertexts
    config = paper_coprocessor.config
    _, add_report = paper_coprocessor.add(ct1, ct2)
    arm = ArmCoreModel(config)
    dma = DmaModel(config)

    def model_rows():
        add_sw = arm.add_in_sw_cycles(paper_params)
        send = dma.send_ciphertexts_seconds(paper_params.poly_bytes, 2)
        recv = dma.receive_ciphertext_seconds(paper_params.poly_bytes)
        return add_sw, send, recv

    add_sw_cycles, send_seconds, recv_seconds = benchmark(model_rows)
    send_cycles = round(send_seconds * config.arm_clock_hz)
    recv_cycles = round(recv_seconds * config.arm_clock_hz)

    lines = [
        "TABLE I — PERFORMANCE OF HIGH-LEVEL OPERATIONS (one coprocessor)",
        f"{'operation':<34} {'measured':>14} {'paper':>14} {'delta':>8}",
        format_row("Mult in HW (Arm cycles)", mult_report.arm_cycles,
                   PAPER["mult_hw_cycles"]),
        format_row("Mult in HW (msec)", mult_report.seconds * 1e3,
                   PAPER["mult_hw_ms"], "ms"),
        format_row("Add in HW (Arm cycles)", add_report.arm_cycles,
                   PAPER["add_hw_cycles"]),
        format_row("Add in SW (Arm cycles)", add_sw_cycles,
                   PAPER["add_sw_cycles"]),
        format_row("Send two ciphertexts (Arm cyc)", send_cycles,
                   PAPER["send_cycles"]),
        format_row("Receive result ct (Arm cyc)", recv_cycles,
                   PAPER["recv_cycles"]),
    ]
    save_result("table1_highlevel", "\n".join(lines))

    # Shape assertions: every row within 10%, orderings preserved.
    assert abs(add_sw_cycles - PAPER["add_sw_cycles"]) \
        / PAPER["add_sw_cycles"] < 0.05
    assert abs(send_cycles - PAPER["send_cycles"]) \
        / PAPER["send_cycles"] < 0.05
    assert abs(recv_cycles - PAPER["recv_cycles"]) \
        / PAPER["recv_cycles"] < 0.05
    # HW add is ~80x cheaper than SW add even counting transfers.
    hw_add_with_transfers = (add_report.seconds + send_seconds
                             + recv_seconds)
    assert add_sw_cycles / config.arm_clock_hz \
        > 50 * hw_add_with_transfers
