"""Paper Table III: comparison of data transfer techniques.

One R_q polynomial (98,304 bytes) moved as a single burst, in
16,384-byte chunks, and in 1,024-byte chunks.
"""

from conftest import format_row, save_result

from repro.hw.config import HardwareConfig
from repro.hw.dma import DmaModel

PAPER_ROWS = [
    ("single transfer of 98,304 B", None, 90_708, 76),
    ("16,384-byte chunks", 16_384, 130_686, 109),
    ("1,024-byte chunks", 1_024, 242_771, 202),
]
PAYLOAD = 98_304


def test_table3_transfer_techniques(benchmark):
    dma = DmaModel(HardwareConfig())

    def run_all():
        return [
            dma.transfer_arm_cycles(PAYLOAD, chunk_bytes=chunk)
            for _, chunk, _, _ in PAPER_ROWS
        ]

    measured = benchmark(run_all)
    lines = [
        "TABLE III — COMPARISON OF DATA TRANSFER TECHNIQUES",
        f"{'technique':<34} {'measured':>14} {'paper':>14} {'delta':>8}"
        "   (Arm cycles)",
    ]
    for (label, _, paper_cycles, _), ours in zip(PAPER_ROWS, measured, strict=True):
        lines.append(format_row(label, ours, paper_cycles))
    save_result("table3_dma", "\n".join(lines))

    single, chunk16, chunk1 = measured
    # Endpoint rows fitted within 5%; the middle row is the documented
    # ~24%-low deviation (EXPERIMENTS.md) — the ordering is the result.
    assert abs(single - 90_708) / 90_708 < 0.05
    assert abs(chunk1 - 242_771) / 242_771 < 0.05
    assert single < chunk16 < chunk1
    # The paper's conclusion: chunking costs real time — the 1 KiB case
    # is ~2.7x the single burst.
    assert 2.0 < chunk1 / single < 3.5


def test_table3_single_burst_bandwidth(benchmark):
    """The single burst sustains ~1.3 GB/s of the 2 GB/s AXI peak."""
    dma = DmaModel(HardwareConfig())
    seconds = benchmark(dma.transfer_seconds, PAYLOAD)
    bandwidth = PAYLOAD / seconds
    assert 1.2e9 < bandwidth < 1.45e9
