"""Paper Sec. VI-C: the coprocessor without the HPS optimisation.

The slower design-space point: traditional-CRT lift/scale at 225 MHz
with four cores each and a two-component relinearisation key. The paper
reports 1.68 ms (Lift, one core), 4.3 ms (Scale, one core), and 8.3 ms
per Mult — less than 2x slower than the HPS design despite Lift/Scale
being an order of magnitude slower, because its relinearisation key is
three times smaller.
"""

from dataclasses import replace

import pytest

from conftest import format_row, save_result

from repro.fv.encoder import Plaintext
from repro.fv.scheme import FvContext
from repro.hw.config import slow_coprocessor_config
from repro.hw.coprocessor import Coprocessor
from repro.hw.lift_unit import TraditionalLiftUnit
from repro.hw.scale_unit import TraditionalScaleUnit
from repro.rns.basis import lift_context, scale_context

PAPER_LIFT_MS = 1.68
PAPER_SCALE_MS = 4.3
PAPER_MULT_MS = 8.3
PAPER_FAST_MULT_MS = 4.458


@pytest.fixture(scope="module")
def slow_setup(paper_params):
    context = FvContext(paper_params, seed=66)
    keys = context.keygen()
    digit_key = context.relin_keygen_digit(
        keys.secret, -(-paper_params.q.bit_length() // 2)
    )
    plain = Plaintext.from_list([1, 1], paper_params.n, paper_params.t)
    ct = context.encrypt(plain, keys.public)
    return context, keys, digit_key, ct


def test_nonhps_lift_single_core(benchmark, paper_params):
    config = replace(slow_coprocessor_config(), lift_cores=1)
    unit = TraditionalLiftUnit(
        lift_context(paper_params.q_primes, paper_params.p_primes), config
    )
    cycles = benchmark(unit.cycles, paper_params.n)
    seconds = cycles / config.fpga_clock_hz
    assert abs(seconds * 1e3 - PAPER_LIFT_MS) / PAPER_LIFT_MS < 0.02


def test_nonhps_scale_single_core(benchmark, paper_params):
    config = replace(slow_coprocessor_config(), scale_cores=1)
    unit = TraditionalScaleUnit(
        scale_context(paper_params.q_primes, paper_params.p_primes,
                      paper_params.t), config
    )
    cycles = benchmark(unit.cycles, paper_params.n)
    seconds = cycles / config.fpga_clock_hz
    assert abs(seconds * 1e3 - PAPER_SCALE_MS) / PAPER_SCALE_MS < 0.02


def test_nonhps_full_mult(benchmark, paper_params, slow_setup,
                          paper_coprocessor, paper_ciphertexts, paper_keys):
    context, keys, digit_key, ct = slow_setup
    slow = Coprocessor(paper_params, slow_coprocessor_config())

    def run_mult():
        return slow.mult(ct, ct, digit_key)

    result, report = benchmark.pedantic(run_mult, rounds=1, iterations=1)

    # Functional check: the slow coprocessor's output decrypts correctly.
    decrypted = context.decrypt(result, keys.secret)
    assert decrypted.coeffs[0] == 1 and decrypted.coeffs[2] == 1

    # Timing against the paper, and the fast coprocessor for the ratio.
    ct1, ct2 = paper_ciphertexts
    _, fast_report = paper_coprocessor.mult(ct1, ct2, paper_keys.relin)
    lines = [
        "SEC. VI-C — PERFORMANCE WITHOUT THE HPS OPTIMISATION",
        f"{'metric':<34} {'measured':>14} {'paper':>14} {'delta':>8}",
        format_row("Mult, slow coprocessor (ms)", report.seconds * 1e3,
                   PAPER_MULT_MS, "ms"),
        format_row("Mult, fast coprocessor (ms)",
                   fast_report.seconds * 1e3, PAPER_FAST_MULT_MS, "ms"),
        format_row("slow / fast ratio",
                   report.seconds / fast_report.seconds,
                   PAPER_MULT_MS / PAPER_FAST_MULT_MS, "x"),
    ]
    save_result("nonhps_architecture", "\n".join(lines))

    assert abs(report.seconds * 1e3 - PAPER_MULT_MS) / PAPER_MULT_MS < 0.20
    # The paper's observation: less than 2x slower overall.
    assert report.seconds < 2 * fast_report.seconds
    assert report.seconds > fast_report.seconds


def test_nonhps_key_is_three_times_smaller(benchmark, paper_params,
                                           slow_setup, paper_keys):
    """Sec. VI-C: 'three times smaller relinearization key'."""
    _, _, digit_key, _ = slow_setup
    ratio = benchmark(
        lambda: paper_keys.relin.key_bytes(paper_params.n)
        / digit_key.key_bytes(paper_params.n)
    )
    assert ratio == pytest.approx(3.0)
