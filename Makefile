# Single source of truth for the commands CI runs, so local dev and
# the workflow can never drift: `make test` is exactly the tier-1
# gate, `make lint` / `make coverage` / `make bench-smoke` are the CI
# jobs, `make bench-nightly` is the scheduled full-mode throughput
# sweep, `make cluster-demo` is the multi-FPGA acceptance run.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint coverage bench-smoke bench-full bench-nightly \
	cluster-demo chaos-smoke clean

test:
	$(PYTHON) -m pytest -x -q

lint:
	ruff check src tests benchmarks examples

coverage:
	$(PYTHON) -m pytest -q --cov=repro --cov-report=term \
		--cov-fail-under=80

# Fast-mode benches: regenerate the serving + cluster result files the
# CI bench-smoke job uploads as artifacts (REPRO_BENCH_FAST shrinks
# the sweeps; drop it to reproduce the committed full-mode numbers).
bench-smoke:
	REPRO_BENCH_FAST=1 $(PYTHON) -m pytest -q \
		benchmarks/bench_serving_runtime.py \
		benchmarks/bench_cluster_scaling.py \
		benchmarks/bench_fv_throughput.py \
		benchmarks/bench_mult_resident.py \
		benchmarks/bench_optimizer.py

bench-full:
	$(PYTHON) -m pytest -q \
		benchmarks/bench_serving_runtime.py \
		benchmarks/bench_cluster_scaling.py \
		benchmarks/bench_fv_throughput.py \
		benchmarks/bench_mult_resident.py \
		benchmarks/bench_optimizer.py

# Nightly CI job: the full-mode FV throughput run (headline block +
# the n = 4096..32768 ring sweep), appending one record with run
# metadata to the BENCH_fv_ops.json trajectory.
bench-nightly:
	$(PYTHON) -m pytest -q benchmarks/bench_fv_throughput.py

cluster-demo:
	$(PYTHON) -m repro cluster --shards 8

# CI test-faults job: the fault-injection suite on fixed FaultPlan
# seeds plus the fast-mode chaos bench (mid-run board kill with the
# zero-loss / <3x-p99 gates).
chaos-smoke:
	$(PYTHON) -m pytest -x -q tests/test_faults.py
	REPRO_BENCH_FAST=1 $(PYTHON) -m pytest -q \
		benchmarks/bench_fault_tolerance.py
	$(PYTHON) -m repro cluster --shards 8 --faults 2019 --replicas 2

clean:
	rm -rf .pytest_cache .ruff_cache .coverage htmlcov
	find . -name __pycache__ -type d -exec rm -rf {} +
