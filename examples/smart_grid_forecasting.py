#!/usr/bin/env python3
"""Privacy-friendly smart-grid statistics on encrypted meter readings.

The motivating application of the paper (its depth-4 parameter set cites
the smart-grid forecasting work of Bos et al. [4]): meters encrypt their
readings, the utility's cloud computes totals, weighted forecasts, and
variance-style second moments without seeing any individual household's
consumption.

Run:  python examples/smart_grid_forecasting.py
"""

import numpy as np

from repro import FvContext, mini
from repro.apps import SmartGridAggregator
from repro.apps.forecasting import plaintext_reference

NUM_METERS = 8
SLOTS = 48            # half-hour readings for one day
WEIGHTS = [5, 3, 1]   # public forecasting model: weighted lagged days


def main() -> None:
    # t = 65537 is prime with t ≡ 1 (mod 2n): batching packs one reading
    # per slot, so a single ciphertext carries a meter's whole day.
    params = mini(t=65537)
    context = FvContext(params, seed=7)
    keys = context.keygen()
    aggregator = SmartGridAggregator(context, keys)

    rng = np.random.default_rng(11)
    readings = rng.integers(0, 500, size=(NUM_METERS, SLOTS))
    print(f"{NUM_METERS} meters, {SLOTS} slots each; "
          f"ciphertext = {params.ciphertext_bytes:,} bytes\n")

    print("meters encrypt their readings ...")
    meter_cts = [aggregator.encrypt_readings(r) for r in readings]

    print("cloud aggregates under encryption ...")
    total_ct = aggregator.total(meter_cts)
    sum_sq_ct = aggregator.sum_of_squares(meter_cts)
    forecast_ct = aggregator.weighted_forecast(meter_cts[:3], WEIGHTS)

    print("authority decrypts only the aggregates:\n")
    reference = plaintext_reference(readings, WEIGHTS, params.t)
    total = aggregator.decrypt_slots(total_ct, SLOTS)
    sum_sq = aggregator.decrypt_slots(sum_sq_ct, SLOTS)
    forecast = aggregator.decrypt_slots(forecast_ct, SLOTS)

    print(f"slot 0..5 totals:    {total[:6].tolist()}")
    print(f"  (reference:        {reference['total'][:6].tolist()})")
    print(f"slot 0..5 sum of x^2: {sum_sq[:6].tolist()}")
    print(f"  (reference:        {reference['sum_of_squares'][:6].tolist()})")
    print(f"slot 0..5 forecast:  {forecast[:6].tolist()}")
    print(f"  (reference:        {reference['forecast'][:6].tolist()})")

    assert np.array_equal(total, reference["total"])
    assert np.array_equal(sum_sq, reference["sum_of_squares"])
    assert np.array_equal(forecast, reference["forecast"])
    print("\nall encrypted aggregates match the plaintext reference.")

    # Extension: one number for the whole fleet via Galois rotations
    # (rotate-and-add slot summation; see docs/ARCHITECTURE.md Sec. 5).
    from repro.fv.galois import GaloisEngine

    engine = GaloisEngine(context)
    summation_keys = engine.summation_keygen(keys.secret)
    grand_ct = aggregator.grand_total(meter_cts, summation_keys)
    grand = aggregator.decrypt_slots(grand_ct, 1)[0]
    expected = int(readings.sum()) % params.t
    print(f"\ngrand total over all meters and slots (computed entirely "
          f"under encryption): {grand}  (plaintext check: {expected})")
    assert grand == expected


if __name__ == "__main__":
    main()
