#!/usr/bin/env python3
"""Private information retrieval: query a table with an encrypted index.

Paper Sec. III-A sizes its depth-4 parameter set for "private
information retrieval or encrypted search in a table of 2^16 entries".
This demo runs the PIR protocol end to end on a 16-entry table (selector
products of 4 encrypted index bits, multiplicative depth 2) and prints
the noise budget actually consumed, then shows the depth arithmetic for
the paper's full 2^16-entry sizing claim.

Run:  python examples/encrypted_search.py
"""

from repro import FvContext, mini
from repro.apps import EncryptedLookupTable
from repro.apps.lookup import selection_depth
from repro.fv.noise import noise_budget_bits

TABLE = [13, 42, 7, 99, 1, 64, 250, 8, 77, 31, 5, 190, 2, 120, 55, 86]


def main() -> None:
    params = mini(t=257)
    context = FvContext(params, seed=13)
    keys = context.keygen()
    server = EncryptedLookupTable(context, keys, TABLE)

    print(f"table: {TABLE}")
    print(f"index bits: {server.index_bits}, "
          f"selector depth: {selection_depth(len(TABLE))}\n")

    for index in (3, 6, 12):
        encrypted_index = server.encrypt_index(index)
        reply = server.lookup(encrypted_index)
        value = server.decrypt_reply(reply)
        budget = noise_budget_bits(context, reply, keys.secret)
        status = "OK" if value == TABLE[index] else "WRONG"
        print(f"lookup(index={index:2d}) -> {value:3d} "
              f"(expected {TABLE[index]:3d}, {status}; "
              f"reply noise budget {budget:.1f} bits)")

    print("\nthe paper's sizing claim: a 2^16-entry table needs 16 index")
    print(f"bits and a selector tree of depth "
          f"{selection_depth(1 << 16)} — exactly the depth-4 budget of "
          f"the (n=4096, 180-bit q) parameter set.")


if __name__ == "__main__":
    main()
