#!/usr/bin/env python3
"""Private information retrieval: one HE program, two executors.

Paper Sec. III-A sizes its depth-4 parameter set for "private
information retrieval or encrypted search in a table of 2^16 entries".
This demo runs the PIR protocol end to end on a 16-entry table (selector
products of 4 encrypted index bits, multiplicative depth 2) — and then
shows the point of the `repro.api` facade: the *same* compiled
`HEProgram` runs

* functionally through `LocalBackend` (real FV ciphertexts, decrypted
  and checked against the table), and
* through `SimulatedBackend` over a multi-shard FPGA cluster, which
  prices every lowered operation on the paper's hardware cost models
  and reports per-request p50/p95/p99 latency.

Run:  python examples/encrypted_search.py
"""

from repro import LocalBackend, Session, SimulatedBackend, mini
from repro.apps import EncryptedLookupTable
from repro.apps.lookup import selection_depth
from repro.cluster import TenantAffinityRouter

TABLE = [13, 42, 7, 99, 1, 64, 250, 8, 77, 31, 5, 190, 2, 120, 55, 86]
SHARDS = 4


def main() -> None:
    session = Session(mini(t=257), seed=13)
    server = EncryptedLookupTable(session, TABLE)

    print(f"table: {TABLE}")
    print(f"index bits: {server.index_bits}, "
          f"selector depth: {selection_depth(len(TABLE))}\n")

    # -- functional executions, one program per query -------------------
    local = LocalBackend(session)
    program = None
    for index in (3, 6, 12):
        program = server.lookup_program(server.encrypt_index(index))
        result = local.run(program)
        value = int(result.decrypt("out")[0])
        budget = result.noise_budget_bits("out")
        status = "OK" if value == TABLE[index] else "WRONG"
        print(f"lookup(index={index:2d}) -> {value:3d} "
              f"(expected {TABLE[index]:3d}, {status}; "
              f"reply noise budget {budget:.1f} bits)")

    # -- the same program object through the simulated cluster ----------
    backend = SimulatedBackend.over_cluster(
        session.params, SHARDS, router_factory=TenantAffinityRouter)
    run = backend.run(program, requests=100, rate_per_second=150.0,
                      num_tenants=32, seed=1)
    latency = run.latency_summary()
    print(f"\nsame HEProgram on a {SHARDS}-shard cluster "
          f"({program.num_ops} ops/request, 100 requests at 150/s):")
    print(f"  completed {len(run.completed)}/100, "
          f"{run.requests_per_second():.0f} requests/s")
    print(f"  per-request latency p50 {latency.p50 * 1e3:.2f} ms, "
          f"p95 {latency.p95 * 1e3:.2f} ms, "
          f"p99 {latency.p99 * 1e3:.2f} ms")

    print("\nthe paper's sizing claim: a 2^16-entry table needs 16 index")
    print(f"bits and a selector tree of depth "
          f"{selection_depth(1 << 16)} — exactly the depth-4 budget of "
          f"the (n=4096, 180-bit q) parameter set.")


if __name__ == "__main__":
    main()
