#!/usr/bin/env python3
"""Encrypted compare-and-swap — the cell of oblivious sorting networks.

Paper Sec. III-A lists "encrypted sorting" among the applications its
depth-4 parameter set supports. This demo sorts pairs of encrypted 3-bit
values without the server learning anything: the comparator consumes
depth 3 and the selection multiplexer one more — exactly the paper's
depth-4 budget, which is the quantitative content of its remark.

Run:  python examples/encrypted_sorting.py
"""

import numpy as np

from repro import FvContext, mini
from repro.apps.comparator import EncryptedComparator, comparator_depth
from repro.fv.noise import noise_budget_bits

BITS = 3


def main() -> None:
    params = mini(t=2)
    context = FvContext(params, seed=17)
    keys = context.keygen()
    comparator = EncryptedComparator(context, keys, bits=BITS)

    print(f"{BITS}-bit compare-and-swap: comparator depth "
          f"{comparator_depth(BITS)} + 1 mux level = "
          f"{comparator_depth(BITS) + 1} total (paper budget: 4)\n")

    rng = np.random.default_rng(3)
    for _ in range(4):
        x, y = (int(v) for v in rng.integers(0, 1 << BITS, 2))
        ct_x = comparator.encrypt_value(x)
        ct_y = comparator.encrypt_value(y)
        low_ct, high_ct = comparator.compare_and_swap(ct_x, ct_y)
        low = comparator.decrypt_value(low_ct)
        high = comparator.decrypt_value(high_ct)
        budget = noise_budget_bits(context, low_ct[0], keys.secret)
        status = "OK" if (low, high) == (min(x, y), max(x, y)) else "WRONG"
        print(f"sort({x}, {y}) -> ({low}, {high})  [{status}; "
              f"remaining budget {budget:.1f} bits]")

    print("\na full k-element sorting network repeats this cell "
          "O(k log^2 k) times;\neach cell is one paper-grade Mult "
          "workload for the coprocessor.")


if __name__ == "__main__":
    main()
