#!/usr/bin/env python3
"""Design-space exploration of the coprocessor (paper Sec. VII).

The paper: "Our coprocessor architecture offers trade-offs between
hardware cost and performance ... the design decisions can be tweaked to
meet different requirements." This script sweeps the main design knobs
of the model and prints the resulting Mult latency, throughput, and
resource estimates:

* HPS vs traditional-CRT lift/scale (the paper's two coprocessors);
* one vs two butterfly cores per RPAU;
* twiddle factors in ROM vs recomputed (the 20% bubble penalty);
* relinearisation keys streamed from DDR vs pinned on-chip.

Run:  python examples/design_space_exploration.py
"""

from dataclasses import replace

from repro import HardwareConfig, hpca19, slow_coprocessor_config
from repro.hw.resources import ResourceEstimator
from repro.system import CloudServer


def evaluate(name: str, config: HardwareConfig) -> None:
    params = hpca19()
    server = CloudServer(params, config)
    resources = ResourceEstimator(params, config).single_coprocessor()
    mult_ms = server.mult_compute_seconds() * 1e3
    throughput = server.mult_throughput_per_second()
    print(f"{name:<38}{mult_ms:>9.2f} ms {throughput:>8.0f}/s"
          f"{resources.luts:>9,}{resources.bram36:>7}{resources.dsps:>6}")


def main() -> None:
    header = (f"{'design point':<38}{'Mult':>12}{'thruput':>10}"
              f"{'LUTs':>9}{'BRAM':>7}{'DSP':>6}")
    print(header)
    print("-" * len(header))

    base = HardwareConfig()
    evaluate("paper fast coprocessor (HPS)", base)
    evaluate("slow coprocessor (traditional CRT)", slow_coprocessor_config())
    evaluate("single butterfly core per RPAU",
             replace(base, butterfly_cores_per_rpau=1))
    evaluate("no twiddle ROM (20% NTT bubbles)",
             replace(base, twiddle_rom=False))
    evaluate("relin keys pinned on-chip",
             replace(base, relin_key_on_chip=True))
    evaluate("4 lift + 4 scale cores",
             replace(base, lift_cores=4, scale_cores=4))
    evaluate("single coprocessor",
             replace(base, num_coprocessors=1))

    print("-" * len(header))
    print("paper reference points: fast coprocessor 4.458 ms / 400 per s "
          "with two instances;\nslow coprocessor 8.3 ms; "
          "rlk streaming costs ~30% of Mult latency.")


if __name__ == "__main__":
    main()
