#!/usr/bin/env python3
"""Run FV.Mult on the simulated coprocessor and compare with the paper.

Reproduces, live, the Table I / Table II measurement experiment: one
homomorphic multiplication executes instruction-by-instruction on the
cycle-level model of the paper's coprocessor, the result is checked
bit-for-bit against the software evaluator, and the per-instruction
cycle counts are printed next to the paper's measured values.

Run:  python examples/hw_simulation_demo.py
"""

import time

import numpy as np

from repro import Coprocessor, Evaluator, FvContext, Plaintext, hpca19
from repro.hw.isa import Opcode

PAPER_TABLE2_ARM_CYCLES = {
    Opcode.NTT: 87_582,
    Opcode.INTT: 102_043,
    Opcode.CMUL: 15_662,
    Opcode.CADD: 16_292,
    Opcode.REARRANGE: 25_006,
    Opcode.LIFT: 99_137,
    Opcode.SCALE: 99_274,
}
PAPER_MULT_ARM_CYCLES = 5_349_567
PAPER_MULT_MS = 4.458


def main() -> None:
    params = hpca19()
    print("building FV context and keys at the paper's parameter set ...")
    context = FvContext(params, seed=42)
    keys = context.keygen()

    m1 = Plaintext.from_list([1, 1, 0, 1], params.n, params.t)
    m2 = Plaintext.from_list([1, 0, 1], params.n, params.t)
    ct1 = context.encrypt(m1, keys.public)
    ct2 = context.encrypt(m2, keys.public)

    print("executing FV.Mult on the simulated coprocessor ...")
    coprocessor = Coprocessor(params)
    start = time.perf_counter()
    hw_result, report = coprocessor.mult(ct1, ct2, keys.relin)
    wall = time.perf_counter() - start

    sw_result = Evaluator(context).multiply(ct1, ct2, keys.relin)
    identical = all(
        np.array_equal(h.residues, s.residues)
        for h, s in zip(hw_result.parts, sw_result.parts, strict=True)
    )
    print(f"hardware result bit-identical to software evaluator: "
          f"{identical}")
    assert context.decrypt(hw_result, keys.secret).coeffs[:6].tolist() == \
        context.decrypt(sw_result, keys.secret).coeffs[:6].tolist()

    print(f"\nper-instruction breakdown (simulated in {wall:.2f} s):")
    header = (f"{'instruction':<18}{'calls':>6}{'Arm cyc/call':>14}"
              f"{'paper':>10}{'delta':>8}")
    print(header)
    print("-" * len(header))
    for op, stat in report.op_stats.items():
        arm = report.config.fpga_to_arm_cycles(round(stat.cycles_per_call))
        paper = PAPER_TABLE2_ARM_CYCLES.get(op)
        delta = (f"{(arm - paper) / paper * 100:+.1f}%" if paper else "-")
        paper_s = f"{paper:,}" if paper else "-"
        print(f"{op.value:<18}{stat.calls:>6}{arm:>14,}{paper_s:>10}"
              f"{delta:>8}")
    print("-" * len(header))
    mult_delta = ((report.arm_cycles - PAPER_MULT_ARM_CYCLES)
                  / PAPER_MULT_ARM_CYCLES * 100)
    print(f"Mult total: {report.arm_cycles:,} Arm cycles = "
          f"{report.seconds * 1e3:.3f} ms "
          f"(paper: {PAPER_MULT_ARM_CYCLES:,} = {PAPER_MULT_MS} ms, "
          f"delta {mult_delta:+.1f}%)")
    print(f"relinearisation key streaming share: "
          f"{report.transfer_cycles / report.total_cycles * 100:.0f}% "
          f"(paper: ~30%)")


if __name__ == "__main__":
    main()
