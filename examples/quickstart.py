#!/usr/bin/env python3
"""Quickstart: encrypt, compute on ciphertext, decrypt.

Walks the full FV lifecycle at the paper's production parameter set
(n = 4096, 180-bit q, depth 4) and prints the noise budget as
homomorphic operations consume it.

Run:  python examples/quickstart.py [--params mini|hpca19]
"""

import argparse


from repro import Evaluator, FvContext, Plaintext, hpca19, mini
from repro.fv.noise import noise_budget_bits


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--params", choices=("mini", "hpca19"),
                        default="hpca19")
    args = parser.parse_args()
    params = hpca19() if args.params == "hpca19" else mini()

    print(f"parameter set: {params.name}  n={params.n}  "
          f"log2(q)={params.log2_q}  log2(Q)={params.log2_big_q}  "
          f"t={params.t}  sigma={params.sigma}")
    print(f"estimated ring-LWE security: "
          f"~{params.estimated_security_bits():.0f} bits\n")

    context = FvContext(params, seed=2019)
    keys = context.keygen()

    # Two plaintext polynomials: x + 1 and x - 1 (over t = 2: x + 1 both).
    m1 = Plaintext.from_list([1, 1], params.n, params.t)
    m2 = Plaintext.from_list([1, 1], params.n, params.t)
    ct1 = context.encrypt(m1, keys.public)
    ct2 = context.encrypt(m2, keys.public)
    print(f"fresh ciphertext: {ct1.byte_size():,} bytes, noise budget "
          f"{noise_budget_bits(context, ct1, keys.secret):.1f} bits")

    # Homomorphic addition.
    ct_sum = context.add(ct1, ct2)
    dec_sum = context.decrypt(ct_sum, keys.secret)
    print(f"add:  decrypt(ct1 + ct2) low coeffs = "
          f"{dec_sum.coeffs[:4].tolist()} (expect (m1+m2) mod t)")

    # Homomorphic multiplication: (x+1)^2 = x^2 + 2x + 1 = x^2 + 1 mod 2.
    evaluator = Evaluator(context)
    ct_prod = evaluator.multiply(ct1, ct2, keys.relin)
    dec_prod = context.decrypt(ct_prod, keys.secret)
    print(f"mult: decrypt(ct1 * ct2) low coeffs = "
          f"{dec_prod.coeffs[:4].tolist()} (expect [1, 0, 1, 0])")
    print(f"      noise budget after mult: "
          f"{noise_budget_bits(context, ct_prod, keys.secret):.1f} bits")

    # Chain multiplications to the advertised depth.
    ct = ct_prod
    depth = 1
    while True:
        ct = evaluator.multiply(ct, ct, keys.relin)
        depth += 1
        budget = noise_budget_bits(context, ct, keys.secret)
        print(f"      depth {depth}: budget {budget:.1f} bits")
        if budget < 10 or depth >= 4:
            break
    print("\nthe paper sizes this parameter set for depth 4 — confirmed"
          if depth >= 4 else "")


if __name__ == "__main__":
    main()
