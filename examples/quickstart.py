#!/usr/bin/env python3
"""Quickstart: encrypt, compute on ciphertext, decrypt — via the facade.

Walks the full FV lifecycle at the paper's production parameter set
(n = 4096, 180-bit q, depth 4) through the `repro.api.Session` facade:
handles instead of raw ciphertexts, Python operators instead of
evaluator calls, and the noise budget printed as homomorphic operations
consume it.

Run:  python examples/quickstart.py [--params mini|hpca19]
"""

import argparse

from repro import Session, hpca19, mini


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--params", choices=("mini", "hpca19"),
                        default="hpca19")
    args = parser.parse_args()
    params = hpca19() if args.params == "hpca19" else mini()

    print(f"parameter set: {params.name}  n={params.n}  "
          f"log2(q)={params.log2_q}  log2(Q)={params.log2_big_q}  "
          f"t={params.t}  sigma={params.sigma}")
    print(f"estimated ring-LWE security: "
          f"~{params.estimated_security_bits():.0f} bits\n")

    # One Session owns the context, the keys, and the encoder.
    session = Session(params, seed=2019)

    # Two plaintext polynomials: x + 1 and x - 1 (over t = 2: x + 1 both).
    h1 = session.encrypt([1, 1])
    h2 = session.encrypt([1, 1])
    print(f"fresh ciphertext: {h1.ciphertext.byte_size():,} bytes, "
          f"noise budget {session.noise_budget_bits(h1):.1f} bits")

    # Homomorphic addition — plain Python operators on opaque handles.
    dec_sum = session.decrypt(h1 + h2)
    print(f"add:  decrypt(h1 + h2) low coeffs = "
          f"{dec_sum[:4].tolist()} (expect (m1+m2) mod t)")

    # Homomorphic multiplication: (x+1)^2 = x^2 + 2x + 1 = x^2 + 1 mod 2.
    h_prod = h1 * h2
    dec_prod = session.decrypt(h_prod)
    print(f"mult: decrypt(h1 * h2) low coeffs = "
          f"{dec_prod[:4].tolist()} (expect [1, 0, 1, 0])")
    print(f"      noise budget after mult: "
          f"{session.noise_budget_bits(h_prod):.1f} bits")

    # Chain multiplications to the advertised depth. Every handle keeps
    # its multiplicative depth; the measured budget tracks the decay.
    h = h_prod
    while True:
        h = h * h
        budget = session.noise_budget_bits(h)
        print(f"      depth {h.depth}: budget {budget:.1f} bits")
        if budget < 10 or h.depth >= 4:
            break
    print("\nthe paper sizes this parameter set for depth 4 — confirmed"
          if h.depth >= 4 else "")


if __name__ == "__main__":
    main()
